"""Tests for the four shift-placement policies (paper Section 3.4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.align import KnownOffset
from repro.errors import PolicyError
from repro.bench.synth import SynthParams, synthesize
from repro.ir import LoopBuilder, figure1_loop
from repro.reorg import (
    apply_policy,
    build_loop_graph,
    default_policy,
    dominant_offset,
    is_valid,
    validate_graph,
)


def graph_for(loop, V=16):
    return build_loop_graph(loop, V)


def fig6a_loop():
    lb = LoopBuilder(trip=100, name="fig6a")
    a = lb.array("a", "int32", 128)
    b = lb.array("b", "int32", 128)
    c = lb.array("c", "int32", 128)
    lb.assign(a[3], b[1] + c[1])
    return lb.build()


def fig6b_loop():
    lb = LoopBuilder(trip=100, name="fig6b")
    a = lb.array("a", "int32", 128)
    b = lb.array("b", "int32", 128)
    c = lb.array("c", "int32", 128)
    d = lb.array("d", "int32", 128)
    lb.assign(a[3], b[1] * c[2] + d[1])
    return lb.build()


class TestPaperExamples:
    """Shift counts from the paper's running examples (Figures 4-6)."""

    def test_figure4_zero_shift_uses_three(self):
        assert apply_policy(graph_for(figure1_loop()), "zero").shift_count() == 3

    def test_figure5_eager_shift_uses_two(self):
        assert apply_policy(graph_for(figure1_loop()), "eager").shift_count() == 2

    def test_figure6a_lazy_exploits_relative_alignment(self):
        graph = graph_for(fig6a_loop())
        assert apply_policy(graph, "zero").shift_count() == 3
        assert apply_policy(graph, "eager").shift_count() == 2
        assert apply_policy(graph, "lazy").shift_count() == 1

    def test_figure6b_dominant_shift_uses_two(self):
        graph = graph_for(fig6b_loop())
        assert apply_policy(graph, "zero").shift_count() == 4
        assert apply_policy(graph, "dominant").shift_count() == 2

    def test_figure6b_dominant_offset_is_four(self):
        graph = graph_for(fig6b_loop())
        assert dominant_offset(graph.statements[0], 16) == KnownOffset(4)


class TestPolicyProperties:
    def test_all_policies_produce_valid_graphs(self):
        for loop in (figure1_loop(), fig6a_loop(), fig6b_loop()):
            graph = graph_for(loop)
            for policy in ("zero", "eager", "lazy", "dominant"):
                validate_graph(apply_policy(graph, policy))

    def test_aligned_loop_needs_no_shifts(self):
        lb = LoopBuilder(trip=100)
        a = lb.array("a", "int32", 128)
        b = lb.array("b", "int32", 128)
        lb.assign(a[0], b[4] + 1)
        graph = graph_for(lb.build())
        for policy in ("zero", "eager", "lazy", "dominant"):
            assert apply_policy(graph, policy).shift_count() == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(PolicyError, match="unknown policy"):
            apply_policy(graph_for(figure1_loop()), "psychic")

    def test_runtime_alignment_restricted_to_zero(self):
        lb = LoopBuilder(trip=100)
        a = lb.array("a", "int32", 160, align=None)
        b = lb.array("b", "int32", 160, align=None)
        lb.assign(a[0], b[1] + 1)
        graph = graph_for(lb.build())
        validate_graph(apply_policy(graph, "zero"))
        for policy in ("eager", "lazy", "dominant"):
            with pytest.raises(PolicyError, match="compile-time"):
                apply_policy(graph, policy)

    def test_default_policy_selection(self):
        assert default_policy(graph_for(figure1_loop())) == "dominant"
        lb = LoopBuilder(trip=100)
        a = lb.array("a", "int32", 160, align=None)
        b = lb.array("b", "int32", 160)
        lb.assign(a[0], b[1])
        assert default_policy(graph_for(lb.build())) == "zero"

    def test_dominant_tie_prefers_store_offset(self):
        # loads at 4 and 8 (one each), store at 8: tie between 4 and 8
        # broken toward the store, saving the final shift.
        lb = LoopBuilder(trip=100)
        a = lb.array("a", "int32", 128)
        b = lb.array("b", "int32", 128)
        c = lb.array("c", "int32", 128)
        lb.assign(a[2], b[1] + c[2])
        graph = graph_for(lb.build())
        assert dominant_offset(graph.statements[0], 16) == KnownOffset(8)
        assert apply_policy(graph, "dominant").shift_count() == 1

    def test_policy_ordering_on_random_loops(self):
        # Guaranteed orderings: delaying can only remove shifts
        # (lazy <= eager), and the dominant meeting offset never does
        # worse than zero's shift-everything placement.  (lazy vs
        # dominant is NOT ordered — the paper applies dominant "after"
        # lazy precisely because either can win.)
        rng = random.Random(5)
        for seed in range(30):
            params = SynthParams(loads=rng.randint(1, 6),
                                 statements=rng.randint(1, 3),
                                 trip=50, bias=rng.random(), reuse=rng.random())
            loop = synthesize(params, seed=seed).loop
            graph = graph_for(loop)
            counts = {p: apply_policy(graph, p).shift_count()
                      for p in ("zero", "eager", "lazy", "dominant")}
            assert counts["lazy"] <= counts["eager"]
            assert counts["dominant"] <= counts["zero"]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 3))
    def test_policies_always_validate_on_synthesized_loops(self, seed, loads, stmts):
        params = SynthParams(loads=loads, statements=stmts, trip=40,
                             bias=0.5, reuse=0.5)
        loop = synthesize(params, seed=seed).loop
        graph = graph_for(loop)
        for policy in ("zero", "eager", "lazy", "dominant"):
            assert is_valid(apply_policy(graph, policy))
