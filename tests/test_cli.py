"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.export import find_compiler

FIG1 = """
int a[128];
int b[128];
int c[128];
for (i = 0; i < 100; i++) {
    a[i + 3] = b[i + 1] + c[i + 2];
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "fig1.c"
    path.write_text(FIG1)
    return str(path)


class TestSimdizeCommand:
    def test_prints_altivec_code(self, source_file, capsys):
        assert main(["simdize", source_file]) == 0
        out = capsys.readouterr().out
        assert "vec_perm(" in out
        assert "policy: dominant" in out

    def test_generic_dialect_and_policy(self, source_file, capsys):
        assert main(["simdize", source_file, "--dialect", "generic",
                     "--policy", "zero"]) == 0
        out = capsys.readouterr().out
        assert "vshiftpair(" in out
        assert "policy: zero, stream shifts: 3" in out


class TestRunCommand:
    def test_reports_metrics(self, source_file, capsys):
        assert main(["run", source_file, "--unroll", "2"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "speedup" in out

    def test_runtime_bindings(self, tmp_path, capsys):
        path = tmp_path / "rt.c"
        path.write_text("int a[300]; int b[300]; int n; int alpha;"
                        "for (i = 0; i < n; i++) { a[i] = b[i+1] * alpha; }")
        assert main(["run", str(path), "--trip", "200",
                     "--set", "alpha=3"]) == 0
        out = capsys.readouterr().out
        assert "trip 200" in out

    def test_fallback_note(self, tmp_path, capsys):
        path = tmp_path / "small.c"
        path.write_text("int a[300]; int b[300]; int n;"
                        "for (i = 0; i < n; i++) { a[i] = b[i+1]; }")
        assert main(["run", str(path), "--trip", "5"]) == 0
        assert "fallback" in capsys.readouterr().out


class TestExportCommand:
    def test_writes_file(self, source_file, tmp_path, capsys):
        out_path = tmp_path / "out.c"
        assert main(["export", source_file, "-o", str(out_path)]) == 0
        assert "_mm_load_si128" in out_path.read_text()

    def test_altivec_backend(self, source_file, capsys):
        assert main(["export", source_file, "--backend", "altivec"]) == 0
        assert "vec_ld(" in capsys.readouterr().out

    @pytest.mark.skipif(find_compiler() is None, reason="no C compiler")
    def test_validate_flag(self, source_file, capsys):
        assert main(["export", source_file, "--validate"]) == 0
        assert "SIMDAL_OK" in capsys.readouterr().out


class TestExplainCommand:
    def test_shows_alignments_and_policies(self, source_file, capsys):
        assert main(["explain", source_file]) == 0
        out = capsys.readouterr().out
        assert "b[i+1]" in out and "offset" in out
        assert "zero" in out and "dominant" in out
        assert "memory  |" in out

    def test_dependence_report_shown(self, tmp_path, capsys):
        path = tmp_path / "dep.c"
        path.write_text("int a[64];"
                        "for (i = 0; i < 40; i++) { a[i] = a[i] + 1; }")
        assert main(["explain", str(path)]) == 0
        assert "same-iteration" in capsys.readouterr().out


class TestBenchCommand:
    def test_fig11_small(self, capsys):
        assert main(["bench", "fig11", "--count", "2",
                     "--trip-count", "61"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out and "LAZY-pc" in out

    def test_coverage_small(self, capsys):
        assert main(["bench", "coverage", "--count", "1"]) == 0
        assert "verified" in capsys.readouterr().out


class TestErrors:
    def test_bad_source_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("this is not a loop")
        assert main(["simdize", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_set_binding(self, tmp_path, capsys):
        path = tmp_path / "rt.c"
        path.write_text("int a[300]; int n;"
                        "for (i = 0; i < n; i++) { a[i] = 1; }")
        assert main(["run", str(path), "--trip", "50", "--set", "oops"]) == 1
