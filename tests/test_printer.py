"""Tests for the AltiVec-style program printer."""

from repro.ir import LoopBuilder, figure1_loop
from repro.simdize import SimdOptions, simdize
from repro.vir import format_program


def program(options=None, loop=None):
    return simdize(loop or figure1_loop(), options=options or SimdOptions()).program


class TestAltivecDialect:
    def test_altivec_mnemonics(self):
        text = format_program(program(SimdOptions(policy="zero", reuse="none")),
                              altivec=True)
        assert "vec_ld(0, " in text
        assert "vec_perm(" in text
        assert "vec_sel(" in text
        assert "vec_st(" in text
        assert "vec_add(" in text

    def test_generic_dialect(self):
        text = format_program(program(SimdOptions(policy="zero", reuse="none")),
                              altivec=False)
        assert "vload(" in text
        assert "vshiftpair(" in text
        assert "vsplice(" in text
        assert "vstore(" in text

    def test_loop_structure_rendered(self):
        text = format_program(program())
        assert "for (i = 1; i < 97; i += 4)" in text
        assert "// --- prologue_s0" in text
        assert "// --- epilogue_s0" in text

    def test_header_mentions_machine_shape(self):
        text = format_program(program())
        assert "V=16 bytes" in text
        assert "B=4" in text

    def test_guard_rendered_for_runtime_trips(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 256)
        b = lb.array("b", "int32", 256)
        lb.assign(a[1], b[2])
        text = format_program(program(loop=lb.build(), options=SimdOptions()))
        assert "if (ub <= 12)" in text
        assert "original scalar loop" in text

    def test_bottom_copies_annotated(self):
        text = format_program(program(SimdOptions(reuse="sp", unroll=1)))
        assert "bottom-of-loop copies" in text

    def test_conditional_sections_rendered(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 256, align=4)
        b = lb.array("b", "int32", 256)
        lb.assign(a[1], b[2])
        text = format_program(program(loop=lb.build()))
        assert "if (" in text

    def test_splat_rendered(self):
        lb = LoopBuilder(trip=40)
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        lb.assign(a[0], b[0] + 9)
        text = format_program(program(loop=lb.build()))
        assert "vec_splat(9)" in text
