"""The central correctness property: simdized == scalar, byte-for-byte.

This reproduces the paper's Section 5.4 verification methodology as a
property-based test: hypothesis draws loop shapes, alignments, trip
counts, policies, and optimization combinations; every draw must
execute identically to the scalar reference on the virtual machine.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.synth import SynthParams, synthesize
from repro.errors import PolicyError
from repro.ir import INT8, INT16, INT32, LoopBuilder
from repro.simdize import SimdOptions, simdize

from conftest import check_loop


@st.composite
def loop_and_options(draw):
    dtype = draw(st.sampled_from([INT8, INT16, INT32]))
    runtime_alignment = draw(st.booleans())
    runtime_trip = draw(st.booleans())
    params = SynthParams(
        loads=draw(st.integers(1, 5)),
        statements=draw(st.integers(1, 3)),
        trip=draw(st.integers(13, 90)),
        bias=draw(st.floats(0, 1)),
        reuse=draw(st.floats(0, 1)),
        dtype=dtype,
        runtime_alignment=runtime_alignment,
        runtime_trip=runtime_trip,
    )
    syn = synthesize(params, seed=draw(st.integers(0, 2**20)))
    policy = "zero" if runtime_alignment else draw(
        st.sampled_from(["zero", "eager", "lazy", "dominant", "auto"])
    )
    options = SimdOptions(
        policy=policy,
        reuse=draw(st.sampled_from(["none", "sp", "pc", "sp+pc"])),
        memnorm=draw(st.booleans()),
        cse=draw(st.booleans()),
        offset_reassoc=draw(st.booleans()),
        unroll=draw(st.sampled_from([1, 2, 3, 4])),
        bounds_scheme=draw(st.sampled_from(["auto", "general"])),
    )
    return syn, options


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(loop_and_options())
def test_simdized_execution_matches_scalar(case):
    syn, options = case
    check_loop(
        syn.loop,
        options,
        trip=syn.params.trip if syn.params.runtime_trip else None,
        residues=syn.base_residues,
        seed=syn.seed,
    )


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**20), st.sampled_from([INT16, INT32]))
def test_eight_byte_vectors(seed, dtype):
    """The machinery is parametric in V; V=8 must work identically."""
    params = SynthParams(loads=3, statements=2, trip=40, bias=0.4,
                         reuse=0.4, dtype=dtype)
    syn = synthesize(params, seed=seed, V=8)
    check_loop(syn.loop, SimdOptions(reuse="sp", unroll=2), V=8,
               residues=syn.base_residues, seed=seed)


class TestDriverBehaviour:
    def test_auto_policy_picks_dominant_when_static(self):
        params = SynthParams(loads=3, trip=40)
        syn = synthesize(params, seed=1)
        result = simdize(syn.loop)
        assert result.policy == "dominant"

    def test_auto_policy_falls_back_to_zero_at_runtime(self):
        params = SynthParams(loads=3, trip=40, runtime_alignment=True)
        syn = synthesize(params, seed=1)
        result = simdize(syn.loop)
        assert result.policy == "zero"

    def test_explicit_policy_with_runtime_alignment_rejected(self):
        params = SynthParams(loads=3, trip=40, runtime_alignment=True)
        syn = synthesize(params, seed=1)
        with pytest.raises(PolicyError):
            simdize(syn.loop, options=SimdOptions(policy="dominant"))

    def test_result_carries_graph_and_stats(self):
        from repro.ir import figure1_loop

        result = simdize(figure1_loop())
        assert result.shift_count == 2
        assert result.graph.loop is result.program.source

    def test_invalid_options_rejected(self):
        with pytest.raises(PolicyError):
            SimdOptions(policy="quantum")
        with pytest.raises(PolicyError):
            SimdOptions(reuse="telepathy")
        with pytest.raises(PolicyError):
            SimdOptions(unroll=0)
        with pytest.raises(PolicyError):
            SimdOptions(bounds_scheme="vibes")

    def test_trip_just_above_guard(self):
        # smallest vectorizable trip: 3B + 1 = 13
        lb = LoopBuilder(trip=13)
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        lb.assign(a[3], b[1])
        check_loop(lb.build(), SimdOptions(reuse="sp", unroll=2))

    def test_scalar_only_rhs(self):
        lb = LoopBuilder(trip=40)
        a = lb.array("a", "int32", 64)
        lb.assign(a[3], 42)
        check_loop(lb.build())

    def test_negative_constant_offsets(self):
        # references may use negative element offsets when in bounds
        from repro.ir.expr import Loop, Ref, Statement, ArrayDecl

        a = ArrayDecl("a", INT32, 64)
        b = ArrayDecl("b", INT32, 64)
        from repro.ir.expr import BinOp
        from repro.ir.types import ADD

        stmt = Statement(Ref(a, 5), BinOp(ADD, Ref(b, 3), Ref(b, 1)))
        loop = Loop(upper=40, statements=[stmt])
        check_loop(loop, SimdOptions(reuse="sp"))
