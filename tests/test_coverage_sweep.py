"""A scaled-down run of the paper's Section 5.4 coverage analysis.

The full 1000-loop sweep is a benchmark (``benchmarks/bench_coverage``);
here a smaller randomized sweep guards the same property in CI time:
every synthesized loop simdizes, executes, and verifies.
"""

from repro.bench import coverage_sweep


def test_small_coverage_sweep_all_verified():
    result = coverage_sweep(count=40, seed=1, trip_range=(61, 80))
    assert result.all_passed, result.format()
    assert result.attempted == result.verified == 40


def test_sweep_reports_format():
    result = coverage_sweep(count=5, seed=2, trip_range=(61, 64))
    text = result.format()
    assert "5 loops generated" in text
    assert "ALL VERIFIED" in text
