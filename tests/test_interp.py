"""Tests for the vector-program interpreter and its op accounting."""

import pytest

from repro.errors import MachineError
from repro.ir import LoopBuilder, figure1_loop
from repro.machine import ArraySpace, RunBindings, run_vector
from repro.machine.counters import OpCounters
from repro.simdize import SimdOptions, simdize

from conftest import sequential_memory


class TestCounters:
    def test_categories_validated(self):
        counters = OpCounters()
        counters.bump("vload")
        counters.bump("vperm", 3)
        assert counters["vload"] == 1
        assert counters["vperm"] == 3
        assert counters.total == 4
        with pytest.raises(KeyError):
            counters.bump("teleport")

    def test_aggregates(self):
        counters = OpCounters()
        for cat, n in (("vload", 2), ("vstore", 1), ("vperm", 4), ("vsel", 1),
                       ("varith", 5), ("scalar", 7)):
            counters.bump(cat, n)
        assert counters.vector_total == 13
        assert counters.reorg_total == 5
        assert counters.memory_total == 3
        other = OpCounters()
        other.bump("vload", 8)
        counters.merge(other)
        assert counters["vload"] == 10
        assert "vload=10" in str(counters)


class TestExecution:
    def test_figure1_exact_values(self):
        loop = figure1_loop(trip=20, length=48)
        result = simdize(loop)
        space, mem = sequential_memory(loop)
        run_vector(result.program, space, mem)
        a = space["a"].read_all(mem)
        assert a[:3] == [0, 1, 2]                 # prologue preserved
        assert a[3:23] == [2 * i + 3 for i in range(20)]
        assert a[23:] == list(range(23, 48))      # epilogue preserved

    def test_guard_fallback_counts_scalar_ops(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 128)
        b = lb.array("b", "int32", 128)
        lb.assign(a[1], b[2])
        result = simdize(lb.build())
        space, mem = sequential_memory(result.program.source)
        out = run_vector(result.program, space, mem, RunBindings(trip=5))
        assert out.used_fallback
        assert out.counters["sload"] == 5
        assert out.counters["sstore"] == 5
        # and the memory matches the scalar semantics
        assert space["a"].read_all(mem)[1:6] == [2, 3, 4, 5, 6]

    def test_runtime_trip_above_guard_runs_vector_path(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 128)
        b = lb.array("b", "int32", 128)
        lb.assign(a[1], b[2])
        result = simdize(lb.build())
        space, mem = sequential_memory(result.program.source)
        out = run_vector(result.program, space, mem, RunBindings(trip=50))
        assert not out.used_fallback
        assert out.counters["vstore"] > 0
        assert space["a"].read_all(mem)[1:51] == list(range(2, 52))

    def test_call_overhead_charged_once(self):
        loop = figure1_loop(trip=20, length=48)
        result = simdize(loop)
        space, mem = sequential_memory(loop)
        out = run_vector(result.program, space, mem)
        assert out.counters["call"] == 2

    def test_branch_and_pointer_overhead_scale_with_iterations(self):
        loop = figure1_loop(trip=100)
        result = simdize(loop, options=SimdOptions(reuse="sp", unroll=1))
        space, mem = sequential_memory(loop)
        out = run_vector(result.program, space, mem)
        steady_iters = len(range(1, 97, 4))
        assert out.counters["branch"] == steady_iters
        # 3 arrays -> 3 induction pointers per iteration
        assert out.counters["scalar"] >= 3 * steady_iters

    def test_unrolled_program_charges_fewer_branches(self):
        loop = figure1_loop(trip=100)
        space, mem = sequential_memory(loop)
        r1 = simdize(loop, options=SimdOptions(reuse="sp", unroll=1))
        r4 = simdize(loop, options=SimdOptions(reuse="sp", unroll=4))
        space2, mem2 = sequential_memory(loop)
        out1 = run_vector(r1.program, space, mem)
        out4 = run_vector(r4.program, space2, mem2)
        assert out4.counters["branch"] < out1.counters["branch"]
        assert mem.snapshot() == mem2.snapshot()

    def test_trip_mismatch_detected(self):
        loop = figure1_loop(trip=20, length=48)
        result = simdize(loop)
        space, mem = sequential_memory(loop)
        with pytest.raises(MachineError):
            run_vector(result.program, space, mem, RunBindings(trip=21))


class TestInterpreterErrors:
    def test_unset_vector_register_read(self):
        from repro.vir import VProgram, SteadyLoop, SConst, VRegE
        from repro.vir.vstmt import SetV

        loop = figure1_loop(trip=20, length=48)
        program = VProgram(source=loop, V=16)
        program.steady = SteadyLoop(
            lb=SConst(0), ub=SConst(4), step=4,
            body=[SetV("x", VRegE("never_set"))],
        )
        space, mem = sequential_memory(loop)
        with pytest.raises(MachineError, match="never_set"):
            run_vector(program, space, mem)

    def test_unset_scalar_register_read(self):
        from repro.vir import VProgram, SteadyLoop, SConst, SReg
        from repro.vir.vstmt import SetS

        loop = figure1_loop(trip=20, length=48)
        program = VProgram(source=loop, V=16)
        program.steady = SteadyLoop(
            lb=SConst(0), ub=SConst(4), step=4,
            body=[SetS("x", SReg("ghost"))],
        )
        space, mem = sequential_memory(loop)
        with pytest.raises(MachineError, match="ghost"):
            run_vector(program, space, mem)
