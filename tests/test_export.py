"""Tests for the C exporters and compiled cross-validation."""

import pytest

from repro.errors import CodegenError
from repro.export import (
    AltivecBackend,
    CEmitter,
    SseBackend,
    cross_validate,
    export_c,
    find_compiler,
)
from repro.ir import LoopBuilder, figure1_loop
from repro.simdize import SimdOptions, simdize

HAVE_CC = find_compiler() is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler available")


def program(loop=None, **kwargs):
    return simdize(loop or figure1_loop(), options=SimdOptions(**kwargs)).program


class TestEmission:
    def test_sse_structure(self):
        src = export_c(program(policy="zero", reuse="sp"), "sse")
        assert "void figure1_scalar(" in src
        assert "void figure1_simd(" in src
        assert "_mm_load_si128" in src
        assert "_mm_alignr_epi8" in src
        assert "SIMDAL_TRUNC" in src
        assert src.count("{") == src.count("}")

    def test_altivec_structure(self):
        src = export_c(program(policy="zero", reuse="sp"), "altivec")
        assert "#include <altivec.h>" in src
        assert "vec_ld(" in src and "vec_st(" in src
        assert "vec_sld(" in src
        assert src.count("{") == src.count("}")

    def test_runtime_alignment_emits_helpers(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 256, align=None)
        b = lb.array("b", "int32", 256, align=None)
        lb.assign(a[0], b[1])
        src = export_c(program(lb.build(), policy="zero", reuse="sp"), "sse")
        assert "simdal_shiftpair_rt" in src
        assert "int64_t n" in src           # runtime bound parameter
        assert "figure" not in src

    def test_guard_calls_scalar(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 256)
        b = lb.array("b", "int32", 256)
        lb.assign(a[1], b[2])
        src = export_c(program(lb.build()), "sse")
        assert "_scalar(" in src and "return;" in src

    def test_splat_and_iota_emission(self):
        lb = LoopBuilder(trip=40)
        a = lb.array("a", "int16", 64)
        b = lb.array("b", "int16", 64)
        lb.assign(a[1], b[0] * 3 + lb.index_value())
        src = export_c(program(lb.build()), "sse")
        assert "_mm_set1_epi16" in src
        assert "_mm_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7)" in src

    def test_identifier_sanitization(self):
        from repro.export.cgen import c_ident

        assert c_ident("S1*L2_seed5") == "S1_L2_seed5"
        assert c_ident("vnew0.u1") == "vnew0_u1"
        assert c_ident("9lives") == "_9lives"

    def test_unsupported_ops_rejected(self):
        lb = LoopBuilder(trip=100)  # above the uint8 guard of 3B = 48
        a = lb.array("a", "uint8", 128)
        b = lb.array("b", "uint8", 128)
        lb.assign(a[1], b[0].avg(b[1]))
        with pytest.raises(CodegenError, match="avg"):
            export_c(program(lb.build()), "sse")


@needs_cc
class TestCompiledCrossValidation:
    def test_figure1_all_policies(self):
        loop = figure1_loop(trip=100)
        for policy in ("zero", "eager", "lazy", "dominant"):
            report = cross_validate(loop, SimdOptions(policy=policy, reuse="sp",
                                                      unroll=2))
            assert report.passed

    def test_runtime_everything(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int16", 300, align=None)
        b = lb.array("b", "int16", 300, align=None)
        c = lb.array("c", "int16", 300, align=None)
        lb.assign(a[1], b[3] + c[2])
        for trip in (5, 40, 255):
            report = cross_validate(lb.build(), SimdOptions(policy="zero", reuse="sp"),
                                    trip=trip, seed=trip)
            assert report.passed

    def test_scalars_and_unroll(self):
        lb = LoopBuilder(trip=120)
        a = lb.array("a", "int32", 140)
        b = lb.array("b", "int32", 140)
        alpha = lb.scalar("alpha")
        lb.assign(a[3], b[1] * alpha + 7)
        report = cross_validate(lb.build(), SimdOptions(reuse="pc", unroll=4),
                                scalars={"alpha": -3})
        assert report.passed

    def test_reduction_export(self):
        lb = LoopBuilder(trip=100)
        out = lb.array("out", "int32", 8)
        b = lb.array("b", "int32", 128)
        c = lb.array("c", "int32", 128)
        lb.reduce(out, 1, "add", b[1] * c[2])
        report = cross_validate(lb.build(), SimdOptions(reuse="sp", unroll=2))
        assert report.passed

    def test_minmax_reduction_export(self):
        lb = LoopBuilder(trip=77)
        out = lb.array("out", "int16", 8)
        b = lb.array("b", "int16", 96)
        lb.reduce(out, 0, "max", b[3])
        assert cross_validate(lb.build(), SimdOptions()).passed

    def test_int8_lanes(self):
        lb = LoopBuilder(trip=100)
        a = lb.array("a", "int8", 128, align=5)
        b = lb.array("b", "int8", 128, align=11)
        lb.assign(a[2], b[7] + 1)
        assert cross_validate(lb.build(), SimdOptions(reuse="sp")).passed
