"""The hardened ``repro serve`` HTTP tier (DESIGN.md §7).

Every hardening layer is driven end to end against a real asyncio
server on a loopback socket: admission shedding (429 + Retry-After),
single-flight coalescing (N identical concurrent requests, one
computation — and one ``cc`` for one signature), micro-batching of
same-class /verify requests, per-request deadlines (504, with no
shared state mutated by the abandoned work), the native-compile
circuit breaker (trips under injected compile faults, recovers through
a half-open probe), the ``serve`` fault phase (reject / delay /
disconnect), graceful drain, and the byte-parity contract: a /sweep
response body is exactly the ``repro bench`` CLI output.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import faults
from repro.machine.backend import numpy_available
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.breaker import CircuitBreaker

SRC = ("int a[256]; int b[256]; int c[256]; "
       "for (i = 0; i < 150; i++) { a[i] = b[i+1] + c[i+2]; }")

needs_numpy = pytest.mark.skipif(not numpy_available(),
                                 reason="numpy not installed")


@pytest.fixture(autouse=True)
def _clean_fault_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    monkeypatch.setenv("REPRO_FAULT_SLEEP", "0.4")
    faults.reload()
    yield
    faults.reload()


def _arm(monkeypatch, spec: str) -> None:
    monkeypatch.setenv("REPRO_FAULT", spec)
    faults.reload()


def _config(**overrides) -> ServeConfig:
    base = dict(port=0, workers=2, max_inflight=4, max_queue=8,
                deadline=30.0, compile_budget=5.0, breaker_threshold=2,
                breaker_cooldown=0.2, batch_window=0.02, drain_timeout=5.0)
    base.update(overrides)
    return ServeConfig(**base)


async def _fetch(port, method, path, body=None, headers=None):
    """One request over a fresh connection; (status|None, body bytes).

    ``None`` status means the server closed without answering — the
    observable shape of an injected ``serve:disconnect``.
    """
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = b"" if body is None else json.dumps(body).encode()
    head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\n")
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    writer.write(head.encode() + b"\r\n" + payload)
    await writer.drain()
    data = await reader.read()
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head_bytes, _, rest = data.partition(b"\r\n\r\n")
    if not head_bytes:
        return None, b""
    return int(head_bytes.split()[1]), rest


class _Server:
    """An in-process server bound to a loopback port."""

    def __init__(self, app: ServeApp, server, port: int):
        self.app = app
        self.server = server
        self.port = port

    async def fetch(self, method, path, body=None, headers=None):
        return await _fetch(self.port, method, path, body, headers)

    async def close(self):
        self.server.close()
        await self.server.wait_closed()
        self.app.close()


async def _start(config: ServeConfig | None = None) -> _Server:
    app = ServeApp(config or _config())
    server = await asyncio.start_server(app.handle_connection,
                                        "127.0.0.1", 0)
    return _Server(app, server, server.sockets[0].getsockname()[1])


def run(coro):
    return asyncio.run(coro)


class TestProtocol:
    def test_healthz_and_stats(self):
        async def scenario():
            srv = await _start()
            try:
                status, body = await srv.fetch("GET", "/healthz")
                assert status == 200
                health = json.loads(body)
                assert health["status"] == "ok"
                assert health["breaker"] == "closed"
                status, body = await srv.fetch("GET", "/stats")
                assert status == 200
                stats = json.loads(body)
                assert stats["counters"]["requests_total"] >= 1
                assert stats["breaker"]["state"] == "closed"
                assert "singleflight" in stats and "native" in stats
            finally:
                await srv.close()
        run(scenario())

    def test_simdize_and_verify(self):
        async def scenario():
            srv = await _start()
            try:
                status, body = await srv.fetch("POST", "/simdize",
                                               {"source": SRC})
                assert status == 200
                doc = json.loads(body)
                assert doc["policy"] in ("zero", "eager", "lazy", "dominant")
                assert "vec_" in doc["program"]
                status, body = await srv.fetch("POST", "/verify",
                                               {"source": SRC, "seed": 3})
                assert status == 200
                doc = json.loads(body)
                assert doc["verified"] is True
                assert doc["scalar_ops"] > doc["vector_ops"] > 0
                assert doc["degraded"] is None
            finally:
                await srv.close()
        run(scenario())

    def test_verify_matches_cli_run_exactly(self):
        from repro import run_and_verify
        from repro.lang import compile_source
        from repro.simdize import SimdOptions, simdize

        loop = compile_source(SRC)
        result = simdize(loop, 16, SimdOptions())
        oracle = run_and_verify(result.program, seed=11)

        async def scenario():
            srv = await _start()
            try:
                status, body = await srv.fetch("POST", "/verify",
                                               {"source": SRC, "seed": 11})
                assert status == 200
                doc = json.loads(body)
                assert doc["scalar_ops"] == oracle.scalar_total
                assert doc["vector_ops"] == oracle.vector_total
                assert doc["speedup"] == oracle.speedup
            finally:
                await srv.close()
        run(scenario())

    def test_malformed_requests_get_4xx_not_crashes(self):
        async def scenario():
            srv = await _start()
            try:
                status, _ = await srv.fetch("POST", "/verify")
                assert status == 400          # empty body
                status, _ = await srv.fetch("GET", "/nope")
                assert status == 404
                status, _ = await srv.fetch("GET", "/verify")
                assert status == 405
                status, body = await srv.fetch(
                    "POST", "/verify", {"source": "garbage("})
                assert status == 400
                assert b"ParseError" in body
                status, _ = await srv.fetch(
                    "POST", "/verify", {"source": SRC, "bogus": 1})
                assert status == 400          # unknown field
                # raw non-JSON body
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", srv.port)
                writer.write(b"POST /verify HTTP/1.1\r\nHost: t\r\n"
                             b"Content-Length: 3\r\n\r\nxyz")
                await writer.drain()
                data = await reader.read()
                writer.close()
                assert b" 400 " in data.split(b"\r\n", 1)[0]
                # the server survived all of it
                status, _ = await srv.fetch("GET", "/healthz")
                assert status == 200
                assert srv.app.counters["unhandled_errors"] == 0
            finally:
                await srv.close()
        run(scenario())


class TestCoalescingAndBatching:
    def test_identical_concurrent_requests_coalesce(self):
        async def scenario():
            srv = await _start()
            try:
                payload = {"source": SRC, "seed": 5}
                results = await asyncio.gather(*[
                    srv.fetch("POST", "/verify", payload) for _ in range(6)])
                assert [s for s, _ in results] == [200] * 6
                assert len({b for _, b in results}) == 1  # one shared answer
                # Every request was either a flight leader or coalesced
                # onto one; sockets that connect after a leader finishes
                # start a new flight, so only the split varies.
                snap = srv.app.flight.snapshot()
                assert snap["leaders"] + snap["coalesced"] == 6
                assert snap["coalesced"] >= 1
                assert snap["leaders"] < 6
            finally:
                await srv.close()
        run(scenario())

    @needs_numpy
    def test_same_class_verifies_micro_batch(self):
        async def scenario():
            srv = await _start(_config(batch_window=0.05))
            try:
                # Same program structure, different seeds: distinct
                # requests, one signature class -> one batched call.
                results = await asyncio.gather(*[
                    srv.fetch("POST", "/verify",
                              {"source": SRC, "seed": seed, "backend": "jit"})
                    for seed in range(4)])
                assert [s for s, _ in results] == [200] * 4
                assert srv.app.counters["batches"] == 1
                assert srv.app.counters["batch_rows"] == 4
            finally:
                await srv.close()
        run(scenario())

    @needs_numpy
    def test_duplicate_native_signatures_cost_one_cc(self):
        from repro.machine import jit, native

        if native._compiler_identity()[0] is None:
            pytest.skip("no host C compiler")

        async def scenario():
            jit.clear_memory_cache()
            native.clear_memory_cache()
            before = native.STATS["cc_invocations"]
            srv = await _start()
            try:
                results = await asyncio.gather(*[
                    srv.fetch("POST", "/verify",
                              {"source": SRC, "seed": seed,
                               "backend": "native"})
                    for seed in range(5)])
                assert [s for s, _ in results] == [200] * 5
                # One signature, five concurrent requests, at most one
                # compiler launch (zero when the disk cache is warm).
                assert native.STATS["cc_invocations"] - before <= 1
            finally:
                await srv.close()
        run(scenario())


class TestAdmissionAndDeadlines:
    def test_overload_sheds_429_with_retry_after(self, monkeypatch):
        async def scenario():
            srv = await _start(_config(max_inflight=1, max_queue=0))
            try:
                # One slow request occupies the only slot...
                _arm(monkeypatch, "serve:delay:once")
                slow = asyncio.ensure_future(
                    srv.fetch("POST", "/simdize", {"source": SRC}))
                await asyncio.sleep(0.1)
                # ...so the next is shed immediately, not queued.
                status, body = await srv.fetch("POST", "/simdize",
                                               {"source": SRC})
                assert status == 429
                assert json.loads(body)["retry_after"] == 1
                status, _ = await slow
                assert status == 200
                assert srv.app.counters["rejected_429"] >= 1
            finally:
                await srv.close()
        run(scenario())

    def test_deadline_answers_504(self, monkeypatch):
        async def scenario():
            srv = await _start()
            try:
                _arm(monkeypatch, "serve:delay")
                status, body = await srv.fetch(
                    "POST", "/simdize", {"source": SRC},
                    {"X-Repro-Deadline": "0.05"})
                assert status == 504
                assert b"deadline" in body
                assert srv.app.counters["deadline_timeouts"] == 1
                # The slot was released and the server still works.
                _arm(monkeypatch, "")
                status, _ = await srv.fetch("POST", "/simdize",
                                            {"source": SRC})
                assert status == 200
            finally:
                await srv.close()
        run(scenario())

    def test_bad_deadline_header_is_400(self):
        async def scenario():
            srv = await _start()
            try:
                status, _ = await srv.fetch("POST", "/simdize",
                                            {"source": SRC},
                                            {"X-Repro-Deadline": "soon"})
                assert status == 400
            finally:
                await srv.close()
        run(scenario())


class TestServeFaults:
    def test_reject_fault_sheds_before_admission(self, monkeypatch):
        async def scenario():
            srv = await _start()
            try:
                _arm(monkeypatch, "serve:reject")
                status, body = await srv.fetch("POST", "/simdize",
                                               {"source": SRC})
                assert status == 429
                assert b"injected" in body
                # Ops endpoints are exempt: degraded != unobservable.
                status, _ = await srv.fetch("GET", "/healthz")
                assert status == 200
            finally:
                await srv.close()
        run(scenario())

    def test_disconnect_fault_drops_connection(self, monkeypatch):
        async def scenario():
            srv = await _start()
            try:
                _arm(monkeypatch, "serve:disconnect:once")
                status, body = await srv.fetch("POST", "/simdize",
                                               {"source": SRC})
                assert status is None and body == b""
                status, _ = await srv.fetch("POST", "/simdize",
                                            {"source": SRC})
                assert status == 200
                assert srv.app.counters["fault_disconnects"] == 1
            finally:
                await srv.close()
        run(scenario())

    def test_raise_fault_answers_500(self, monkeypatch):
        async def scenario():
            srv = await _start()
            try:
                _arm(monkeypatch, "serve:raise:once")
                status, body = await srv.fetch("POST", "/simdize",
                                               {"source": SRC})
                assert status == 500
                assert b"injected fault" in body
                status, _ = await srv.fetch("GET", "/healthz")
                assert status == 200
            finally:
                await srv.close()
        run(scenario())


class TestCircuitBreaker:
    def test_state_machine(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, cooldown=1.0,
                                 clock=lambda: clock[0])
        assert breaker.allow() and breaker.state == "closed"
        breaker.failure()
        assert breaker.state == "closed"     # 1 < threshold
        breaker.failure()
        assert breaker.state == "open" and breaker.trips == 1
        assert not breaker.allow()           # cooling down
        clock[0] = 1.5
        assert breaker.state == "half-open"
        assert breaker.allow()               # the probe
        assert not breaker.allow()           # only one probe at a time
        breaker.failure()                    # probe failed: re-open
        assert breaker.state == "open" and breaker.trips == 2
        clock[0] = 3.0
        assert breaker.allow()
        breaker.success()
        assert breaker.state == "closed" and breaker.recoveries == 1
        breaker.failure()
        assert breaker.state == "closed"     # streak was reset

    @needs_numpy
    def test_trips_under_injected_compile_faults_and_recovers(
            self, monkeypatch):
        async def scenario():
            srv = await _start(_config(breaker_threshold=2,
                                       breaker_cooldown=0.2))
            try:
                _arm(monkeypatch, "compile:raise")
                records = []
                for seed in range(3):
                    status, body = await srv.fetch(
                        "POST", "/verify",
                        {"source": SRC, "seed": seed, "backend": "native"})
                    assert status == 200       # degraded, not failed
                    records.append(json.loads(body))
                # Every degraded response carries the structured record.
                for doc in records:
                    assert doc["backend"] == "jit"
                    assert doc["degraded"]["tier"] == "jit"
                    assert doc["degraded"]["failed"] == ["native"]
                assert records[2]["degraded"]["reason"] == "circuit open"
                assert srv.app.breaker.state == "open"
                assert srv.app.breaker.trips == 1

                # Recovery: faults cleared, cooldown elapsed, half-open
                # probe succeeds, native serving resumes.
                _arm(monkeypatch, "")
                await asyncio.sleep(0.25)
                status, body = await srv.fetch(
                    "POST", "/verify",
                    {"source": SRC, "seed": 9, "backend": "native"})
                assert status == 200
                doc = json.loads(body)
                assert doc["degraded"] is None
                assert doc["backend"] == "native"
                assert srv.app.breaker.state == "closed"
                assert srv.app.breaker.recoveries == 1
            finally:
                await srv.close()
        run(scenario())

    @needs_numpy
    def test_compile_timeout_trips_breaker(self, monkeypatch):
        async def scenario():
            srv = await _start(_config(breaker_threshold=1,
                                       compile_budget=0.05,
                                       breaker_cooldown=10.0))
            try:
                monkeypatch.setenv("REPRO_FAULT_SLEEP", "0.5")
                _arm(monkeypatch, "compile:timeout:once")
                status, body = await srv.fetch(
                    "POST", "/verify",
                    {"source": SRC, "seed": 1, "backend": "native"})
                assert status == 200
                doc = json.loads(body)
                assert doc["degraded"]["reason"] == "compile budget exceeded"
                assert srv.app.breaker.state == "open"
            finally:
                await srv.close()
        run(scenario())


class TestSweepParity:
    def test_sweep_body_is_byte_identical_to_cli(self, capsys):
        from repro.cli import main

        assert main(["bench", "fig11", "--count", "2",
                     "--trip-count", "64"]) == 0
        oracle = capsys.readouterr().out.encode()

        async def scenario():
            srv = await _start()
            try:
                status, body = await srv.fetch(
                    "GET", "/sweep?figure=fig11&count=2&trip=64")
                assert status == 200
                assert body == oracle
                # Served again from the warm response cache, still
                # byte-identical.
                status, again = await srv.fetch(
                    "GET", "/sweep?figure=fig11&count=2&trip=64")
                assert again == body
                assert srv.app.counters["sweep_cache_hits"] == 1
            finally:
                await srv.close()
        run(scenario())

    def test_sweep_parity_survives_fault_matrix(self, monkeypatch, capsys):
        from repro.cli import main

        assert main(["bench", "fig11", "--count", "2",
                     "--trip-count", "64"]) == 0
        oracle = capsys.readouterr().out.encode()

        async def scenario():
            srv = await _start()
            try:
                _arm(monkeypatch,
                     "serve:disconnect:0.4:7,compile:raise:0.5:3")
                body = None
                for _ in range(20):   # retry through disconnects
                    status, data = await srv.fetch(
                        "GET", "/sweep?figure=fig11&count=2&trip=64")
                    if status == 200:
                        body = data
                        break
                assert body == oracle
            finally:
                await srv.close()
        run(scenario())

    def test_sweep_validates_parameters(self):
        async def scenario():
            srv = await _start()
            try:
                status, _ = await srv.fetch("GET", "/sweep")
                assert status == 400
                status, _ = await srv.fetch("GET", "/sweep?figure=fig99")
                assert status == 400
                status, _ = await srv.fetch(
                    "GET", "/sweep?figure=fig11&count=0")
                assert status == 400
            finally:
                await srv.close()
        run(scenario())


class TestDrain:
    def test_drain_stops_admission_and_reports_unhealthy(self):
        async def scenario():
            srv = await _start()
            try:
                srv.app.request_drain()
                status, body = await srv.fetch("GET", "/healthz")
                assert status == 503
                assert json.loads(body)["status"] == "draining"
                status, _ = await srv.fetch("POST", "/simdize",
                                            {"source": SRC})
                assert status == 503
                # /stats still answers during drain.
                status, body = await srv.fetch("GET", "/stats")
                assert status == 200
                assert json.loads(body)["draining"] is True
                assert await srv.app.wait_idle(2.0)
            finally:
                await srv.close()
        run(scenario())

    def test_inflight_requests_finish_during_drain(self, monkeypatch):
        async def scenario():
            srv = await _start()
            try:
                monkeypatch.setenv("REPRO_FAULT_SLEEP", "0.2")
                _arm(monkeypatch, "serve:delay:once")
                slow = asyncio.ensure_future(
                    srv.fetch("POST", "/simdize", {"source": SRC}))
                await asyncio.sleep(0.05)
                srv.app.request_drain()
                status, _ = await slow
                assert status == 200           # admitted work completes
                assert await srv.app.wait_idle(2.0)
            finally:
                await srv.close()
        run(scenario())


class TestServeCliContract:
    def test_sigterm_drains_cleanly_end_to_end(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(root, "src"),
                   REPRO_CACHE_DIR=str(tmp_path / "cache"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env=env)
        try:
            line = proc.stdout.readline()
            assert "listening on" in line
            port = int(line.rsplit(":", 1)[1])
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5) as resp:
                assert resp.status == 200
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=15)
            assert proc.returncode == 0
            assert "drain requested" in stderr
            assert "drained (clean)" in stderr
            assert "final stats" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
