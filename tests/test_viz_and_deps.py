"""Tests for stream visualization and dependence analysis."""

import pytest

from repro.deps import analyze_dependences, blocking_dependences, dependence_report
from repro.errors import IRError, SimdalError
from repro.ir import LoopBuilder, Ref, figure1_loop
from repro.ir.expr import ArrayDecl
from repro.ir.types import INT32
from repro.simdize import SimdOptions
from repro.viz import (
    loop_alignment_table,
    memory_stream,
    register_stream,
    shifted_stream,
    statement_diagram,
)

from conftest import check_loop


class TestStreamDiagrams:
    def test_memory_stream_shows_offset(self):
        loop = figure1_loop()
        b_ref = loop.statements[0].loads()[0]
        diagram = memory_stream(b_ref)
        assert diagram.offset == 4
        assert "byte offset 4" in diagram.text
        assert "|b0  b1  b2  b3 " in diagram.text

    def test_register_stream_matches_figure2(self):
        loop = figure1_loop()
        b_ref = loop.statements[0].loads()[0]
        text = register_stream(b_ref).text
        assert "[b0   b1   b2   b3  ]" in text
        assert "offset = 4" in text

    def test_shifted_stream_matches_figure4(self):
        loop = figure1_loop()
        b_ref = loop.statements[0].loads()[0]
        text = shifted_stream(b_ref, 0).text
        assert "[b1   b2   b3   b4  ]" in text
        assert "offset = 0" in text

    def test_base_alignment_shifts_cells(self):
        decl = ArrayDecl("x", INT32, 32, align=8)
        diagram = memory_stream(Ref(decl, 0))
        assert diagram.offset == 8
        assert " .   .  " in diagram.text.splitlines()[0]

    def test_runtime_alignment_rejected(self):
        decl = ArrayDecl("x", INT32, 32, align=None)
        with pytest.raises(SimdalError, match="runtime"):
            memory_stream(Ref(decl, 0))

    def test_statement_diagram_covers_all_refs(self):
        text = statement_diagram(figure1_loop().statements[0])
        assert "load b[i+1]" in text
        assert "load c[i+2]" in text
        assert "store a[i+3]" in text

    def test_alignment_table(self):
        table = loop_alignment_table(figure1_loop())
        assert "a[i+3]" in table and "12" in table
        lb = LoopBuilder(trip=10)
        a = lb.array("a", "int32", 32)
        b = lb.array("b", "int32", 32, align=None)
        lb.assign(a[0], b[0])
        table = loop_alignment_table(lb.build())
        assert "runtime" in table and "yes" in table


class TestDependenceAnalysis:
    def _loop_statements(self, store_off, load_off, cross=False):
        a = ArrayDecl("a", INT32, 64)
        c = ArrayDecl("c", INT32, 64)
        from repro.ir.expr import Statement

        if cross:
            return [
                Statement(Ref(c, 0), Ref(a, load_off)),
                Statement(Ref(a, store_off), Ref(c, 1)),
            ]
        return [Statement(Ref(a, store_off), Ref(a, load_off))]

    def test_flow_dependence_unsafe(self):
        deps = analyze_dependences(self._loop_statements(2, 0))
        assert len(deps) == 1
        assert deps[0].kind == "flow" and not deps[0].safe
        assert deps[0].distance == -2

    def test_same_iteration_safe(self):
        deps = analyze_dependences(self._loop_statements(1, 1))
        assert deps[0].kind == "same-iteration" and deps[0].safe

    def test_anti_dependence_safe(self):
        deps = analyze_dependences(self._loop_statements(0, 3))
        assert deps[0].kind == "anti" and deps[0].safe
        assert deps[0].distance == 3

    def test_cross_statement_order_matters(self):
        # load statement before store statement: safe
        deps = analyze_dependences(self._loop_statements(1, 1, cross=True))
        shared = [d for d in deps if d.array == "a"]
        assert shared and all(d.safe for d in shared)

    def test_report_mentions_everything(self):
        report = dependence_report(self._loop_statements(2, 0))
        assert "BLOCKS VECTORIZATION" in report
        assert "distance -2" in report

    def test_blockers_filter(self):
        assert blocking_dependences(self._loop_statements(0, 0)) == []
        assert blocking_dependences(self._loop_statements(3, 0)) != []


class TestDependenceIntegration:
    def test_in_place_update_vectorizes(self):
        lb = LoopBuilder(trip=100)
        a = lb.array("a", "int32", 128, align=4)
        lb.assign(a[1], a[1] * 2 + 1)
        for reuse in ("none", "sp", "pc"):
            check_loop(lb.build(), SimdOptions(reuse=reuse, unroll=2))

    def test_read_ahead_vectorizes(self):
        lb = LoopBuilder(trip=100)
        a = lb.array("a", "int16", 128)
        lb.assign(a[0], a[5].max(0))
        check_loop(lb.build(), SimdOptions(policy="zero", reuse="sp"))

    def test_flow_rejected_with_distance(self):
        lb = LoopBuilder(trip=100)
        a = lb.array("a", "int32", 128)
        lb.assign(a[4], a[1])
        with pytest.raises(IRError, match="distance -3"):
            lb.build()

    def test_unsafe_cross_statement_rejected(self):
        lb = LoopBuilder(trip=100)
        a = lb.array("a", "int32", 128)
        b = lb.array("b", "int32", 128)
        c = lb.array("c", "int32", 128)
        lb.assign(a[1], c[0])
        lb.assign(b[0], a[1])
        with pytest.raises(IRError, match="follows the storing"):
            lb.build()

    def test_runtime_alignment_in_place(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 300, align=None)
        lb.assign(a[0], a[0] + 7)
        check_loop(lb.build(), SimdOptions(policy="zero", reuse="sp"), trip=200)
