"""Tests for common-offset reassociation (paper Section 5.5)."""

import pytest

from repro.errors import GraphError
from repro.ir import LoopBuilder
from repro.reorg import apply_policy, build_loop_graph, reassociate, validate_graph
from repro.reorg.graph import RLoad, ROp, RShiftStream

from conftest import check_loop
from repro.simdize import SimdOptions


def interleaved_loop():
    """(b@4 + c@8) + (d@4 + e@8) with store at 0 — the worst interleave."""
    lb = LoopBuilder(trip=60, name="interleave")
    a = lb.array("a", "int32", 96)
    b = lb.array("b", "int32", 96)
    c = lb.array("c", "int32", 96)
    d = lb.array("d", "int32", 96)
    e = lb.array("e", "int32", 96)
    lb.assign(a[0], (b[1] + c[2]) + (d[1] + e[2]))
    return lb.build()


class TestReassociate:
    def test_reduces_lazy_shifts_to_n_minus_1(self):
        graph = build_loop_graph(interleaved_loop(), 16)
        plain = apply_policy(graph, "lazy").shift_count()
        regrouped = apply_policy(reassociate(graph), "lazy").shift_count()
        # alignments {4, 8, 0(store)} -> n-1 = 2 shifts after regrouping
        assert regrouped == 2
        assert plain == 4

    def test_keeps_graph_valid(self):
        graph = reassociate(build_loop_graph(interleaved_loop(), 16))
        for policy in ("zero", "eager", "lazy", "dominant"):
            validate_graph(apply_policy(graph, policy))

    def test_groups_equal_offsets_adjacent(self):
        graph = reassociate(build_loop_graph(interleaved_loop(), 16))
        root = graph.statements[0].store.src

        def leaves_in_order(node):
            if isinstance(node, RLoad):
                return [node.offset(16).value]
            assert isinstance(node, ROp)
            out = []
            for child in node.inputs:
                out.extend(leaves_in_order(child))
            return out

        order = leaves_in_order(root)
        # equal offsets must be contiguous after regrouping
        assert order in ([4, 4, 8, 8], [8, 8, 4, 4])

    def test_non_associative_ops_untouched(self):
        lb = LoopBuilder(trip=60)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        c = lb.array("c", "int32", 96)
        d = lb.array("d", "int32", 96)
        lb.assign(a[0], (b[1] - c[2]) - d[1])
        graph = build_loop_graph(lb.build(), 16)
        before = str(graph.statements[0].store)
        after = str(reassociate(graph).statements[0].store)
        assert before == after

    def test_mixed_operator_chains_regroup_within_operator(self):
        lb = LoopBuilder(trip=60)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        c = lb.array("c", "int32", 96)
        d = lb.array("d", "int32", 96)
        lb.assign(a[0], b[1] * c[1] + d[2] + b[2])
        graph = build_loop_graph(lb.build(), 16)
        reassociate(graph)  # must not raise; mul subtree is one operand

    def test_rejects_graphs_with_shifts(self):
        graph = apply_policy(build_loop_graph(interleaved_loop(), 16), "zero")
        with pytest.raises(GraphError, match="before shift placement"):
            reassociate(graph)

    def test_execution_equivalence_preserved(self):
        # Reassociation changes evaluation order; results must not change.
        loop = interleaved_loop()
        for policy in ("lazy", "dominant"):
            check_loop(loop, SimdOptions(policy=policy, offset_reassoc=True))

    def test_reassoc_with_splats(self):
        lb = LoopBuilder(trip=60)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        c = lb.array("c", "int32", 96)
        lb.assign(a[0], b[1] + 5 + c[1] + 9)
        loop = lb.build()
        graph = reassociate(build_loop_graph(loop, 16))
        # splats group together; graph stays buildable and correct
        check_loop(loop, SimdOptions(policy="lazy", offset_reassoc=True))
        assert apply_policy(graph, "lazy").shift_count() == 1
