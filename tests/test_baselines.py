"""Tests for the comparison baselines: SEQ, loop peeling, VAST preset."""

import pytest

from repro.baselines import (
    VAST_OPTIONS,
    measure_peeling,
    measure_seq,
    peeling_alignment,
    peeling_applicable,
    vast_options,
)
from repro.bench.synth import SynthParams, synthesize
from repro.errors import BenchError
from repro.ir import LoopBuilder, figure1_loop


def uniform_misalignment_loop(trip=60):
    """Every reference at byte offset 4 — the only shape peeling handles."""
    length = trip + 8
    lb = LoopBuilder(trip=trip, name="uniform")
    a = lb.array("a", "int32", length)
    b = lb.array("b", "int32", length)
    c = lb.array("c", "int32", length)
    lb.assign(a[1], b[1] + c[1])
    return lb.build()


class _SynLike:
    """Minimal stand-in for SynthesizedLoop when hand-building loops."""

    def __init__(self, loop):
        self.loop = loop
        self.base_residues = {}
        self.seed = 0


class TestPeeling:
    def test_alignment_detection(self):
        assert peeling_alignment(uniform_misalignment_loop(), 16) == 4
        assert peeling_alignment(figure1_loop(), 16) is None
        assert peeling_applicable(uniform_misalignment_loop(), 16)
        assert not peeling_applicable(figure1_loop(), 16)

    def test_runtime_alignment_not_applicable(self):
        lb = LoopBuilder(trip=40)
        a = lb.array("a", "int32", 64, align=None)
        b = lb.array("b", "int32", 64)
        lb.assign(a[0], b[0])
        assert not peeling_applicable(lb.build(), 16)

    def test_peeling_executes_correctly(self):
        m = measure_peeling(_SynLike(uniform_misalignment_loop()), 16)
        assert m.peeled == 3  # (16-4)/4 iterations to reach alignment
        assert m.data_count == 60
        assert m.opd > 0

    def test_peeling_rejects_misaligned_disagreement(self):
        with pytest.raises(BenchError, match="not applicable"):
            measure_peeling(_SynLike(figure1_loop()), 16)

    def test_peeling_on_aligned_loop_peels_nothing(self):
        lb = LoopBuilder(trip=60, name="aligned")
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        lb.assign(a[0], b[4])
        m = measure_peeling(_SynLike(lb.build()), 16)
        assert m.peeled == 0

    def test_peeling_beats_scalar_on_its_home_turf(self):
        syn = _SynLike(uniform_misalignment_loop(trip=200))
        syn.loop.statements[0].target.array  # touch
        m = measure_peeling(syn, 16)
        seq = measure_seq(syn, 16)
        assert m.opd < seq.opd


class TestSeq:
    def test_seq_opd_matches_ideal(self):
        params = SynthParams(loads=6, statements=1, trip=50)
        syn = synthesize(params, seed=0)
        m = measure_seq(syn)
        assert m.opd == 12.0

    def test_seq_runtime_trip(self):
        params = SynthParams(loads=2, statements=1, trip=50, runtime_trip=True)
        syn = synthesize(params, seed=0)
        m = measure_seq(syn)
        assert m.data_count == 50


class TestVast:
    def test_vast_is_zero_sp(self):
        assert VAST_OPTIONS.policy == "zero"
        assert VAST_OPTIONS.reuse == "sp"
        assert vast_options(unroll=4).unroll == 4
