"""Tests for expression codegen: shift plans, operand pairs, splats."""

import pytest

from repro.align import KnownOffset, RuntimeOffset
from repro.codegen import CodegenCtx, gen_expr, plan_shift
from repro.errors import CodegenError
from repro.ir import ArrayDecl, Const, INT32, Ref, ScalarVar, figure1_loop
from repro.reorg import RLoad, RShiftStream, RSplat, build_loop_graph
from repro.vir import SConst, SReg, VLoadE, VShiftPairE, VSplatE
from repro.vir.vexpr import SBin


def ctx_for(loop=None):
    return CodegenCtx(loop or figure1_loop(), 16)


def load_with_offset(byte_offset: int, runtime: bool = False) -> RLoad:
    align = None if runtime else 0
    arr = ArrayDecl("arr", INT32, 64, align=align)
    assert byte_offset % 4 == 0
    return RLoad(Ref(arr, byte_offset // 4))


class TestPlanShift:
    def test_no_op_for_equal_offsets(self):
        node = RShiftStream(load_with_offset(4), KnownOffset(4))
        assert plan_shift(ctx_for(), node, residue=0) is None

    def test_left_shift_residue_zero(self):
        # From 4 to 0 at residue 0: current/next pair, amount 4
        node = RShiftStream(load_with_offset(4), KnownOffset(0))
        plan = plan_shift(ctx_for(), node, residue=0)
        assert (plan.k0, plan.amount) == (0, 4)

    def test_right_shift_residue_zero(self):
        # From 0 to 12 at residue 0: previous/current pair, amount 4
        node = RShiftStream(load_with_offset(0), KnownOffset(12))
        plan = plan_shift(ctx_for(), node, residue=0)
        assert (plan.k0, plan.amount) == (-1, 4)

    def test_right_shift_nonzero_residue_uses_next_pair(self):
        # The Figure 4 store stream: from 0 to 12 with the steady loop
        # at LB=1 (residue 1): the *current/next* registers are needed.
        node = RShiftStream(load_with_offset(0), KnownOffset(12))
        plan = plan_shift(ctx_for(), node, residue=1)
        assert (plan.k0, plan.amount) == (0, 4)

    def test_left_shift_nonzero_residue(self):
        node = RShiftStream(load_with_offset(12), KnownOffset(0))
        plan = plan_shift(ctx_for(), node, residue=1)
        # rho=4: r=(12+4)%16=0 < delta=12 -> k0=-1
        assert (plan.k0, plan.amount) == (-1, 12)

    def test_runtime_load_shift_left(self):
        node = RShiftStream(load_with_offset(4, runtime=True), KnownOffset(0))
        ctx = ctx_for()
        plan = plan_shift(ctx, node, residue=0)
        assert plan.k0 == 0
        assert isinstance(plan.amount, SReg)
        # hoisted into the preheader exactly once
        assert len(ctx.preheader) == 1
        plan_shift(ctx, node, residue=0)
        assert len(ctx.preheader) == 1

    def test_runtime_store_shift_right(self):
        node = RShiftStream(load_with_offset(0), RuntimeOffset("arr", 1))
        ctx = ctx_for()
        plan = plan_shift(ctx, node, residue=0)
        assert plan.k0 == -1
        assert isinstance(plan.amount, SReg)

    def test_runtime_shift_requires_residue_zero(self):
        node = RShiftStream(load_with_offset(4, runtime=True), KnownOffset(0))
        with pytest.raises(CodegenError, match="residue"):
            plan_shift(ctx_for(), node, residue=1)

    def test_runtime_to_runtime_rejected(self):
        node = RShiftStream(load_with_offset(4, runtime=True), RuntimeOffset("x", 0))
        with pytest.raises(CodegenError, match="zero-shift"):
            plan_shift(ctx_for(), node, residue=0)


class TestGenExpr:
    def test_load_displacement(self):
        node = load_with_offset(8)
        expr = gen_expr(ctx_for(), node, disp=4)
        assert isinstance(expr, VLoadE)
        assert expr.addr.elem == 2 + 4

    def test_shift_generates_adjacent_pair(self):
        node = RShiftStream(load_with_offset(4), KnownOffset(0))
        expr = gen_expr(ctx_for(), node, disp=0, residue=0)
        assert isinstance(expr, VShiftPairE)
        assert expr.a.addr.elem == 1
        assert expr.b.addr.elem == 1 + 4
        assert expr.shift == 4

    def test_degenerate_shift_elided(self):
        node = RShiftStream(load_with_offset(4), KnownOffset(4))
        expr = gen_expr(ctx_for(), node, disp=0, residue=0)
        assert isinstance(expr, VLoadE)

    def test_splat_const_wraps_to_type(self):
        expr = gen_expr(ctx_for(), RSplat(Const(2**33 + 5)))
        assert isinstance(expr, VSplatE)
        assert expr.operand == SConst(5)

    def test_splat_scalar_var(self):
        lb_loop = figure1_loop()
        expr = gen_expr(ctx_for(lb_loop), RSplat(ScalarVar("alpha")))
        assert isinstance(expr, VSplatE)
        assert str(expr.operand) == "alpha"

    def test_graph_lowering_structure(self):
        from repro.reorg import apply_policy

        graph = apply_policy(build_loop_graph(figure1_loop(), 16), "zero")
        ctx = CodegenCtx(figure1_loop(), 16)
        expr = gen_expr(ctx, graph.statements[0].store.src, 0, residue=0)
        # zero policy: vshiftpair(add(shift(b), shift(c)))-shaped tree
        assert isinstance(expr, VShiftPairE)  # the store-side shift


class TestCtx:
    def test_fresh_names_unique(self):
        ctx = ctx_for()
        names = {ctx.fresh("v") for _ in range(10)}
        assert len(names) == 10

    def test_offset_sexpr_known(self):
        assert ctx_for().offset_sexpr(KnownOffset(8)) == SConst(8)

    def test_offset_sexpr_runtime_is_masked_base(self):
        ctx = ctx_for()
        reg = ctx.offset_sexpr(RuntimeOffset("b", 1))
        assert isinstance(reg, SReg)
        stmt = ctx.preheader[0]
        assert isinstance(stmt.expr, SBin) and stmt.expr.op == "and"
