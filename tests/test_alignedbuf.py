"""Unit tests for the aligned-buffer helper behind the native tier.

The vector-extension emitter promises the C compiler
(`__builtin_assume_aligned`) that every buffer base it receives is
V-aligned; these tests pin the three properties that make the promise
safe — alignment of every view :func:`aligned_view` hands out (and of
every ``Memory`` built on top of it), resize-safety of the backing
while a view is live, and zero-copy identity through
:func:`as_ctypes_u8` (the ctypes array *is* the view's memory, not a
copy).  Pure stdlib: no numpy, no compiler.
"""

import ctypes
import pickle

import pytest

from repro.machine import Memory
from repro.machine.alignedbuf import (
    ALIGNMENT,
    address_of,
    aligned_view,
    as_ctypes_u8,
    is_aligned,
)


class TestAlignedView:
    @pytest.mark.parametrize("size", [0, 1, 7, 64, 253, 4096, 65537])
    def test_default_alignment(self, size):
        view = aligned_view(size)
        assert len(view) == size
        assert is_aligned(view)
        if size:
            assert address_of(view) % ALIGNMENT == 0

    @pytest.mark.parametrize("align", [1, 2, 16, 64, 256, 4096])
    def test_custom_alignment(self, align):
        view = aligned_view(100, align=align)
        assert address_of(view) % align == 0

    def test_alignment_must_be_power_of_two(self):
        for bad in (0, -64, 3, 48, 100):
            with pytest.raises(ValueError):
                aligned_view(16, align=bad)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            aligned_view(-1)

    def test_fill_initializes_every_byte(self):
        view = aligned_view(37, fill=0xAB)
        assert view.tobytes() == b"\xab" * 37

    def test_default_content_is_zeroed(self):
        assert aligned_view(37).tobytes() == b"\x00" * 37

    def test_view_is_writable(self):
        view = aligned_view(8)
        view[3] = 0x5A
        view[4:6] = b"\x01\x02"
        assert view.tobytes() == b"\x00\x00\x00\x5a\x01\x02\x00\x00"

    def test_many_allocations_all_aligned(self):
        # Exercise a range of payload addresses: alignment must come
        # from the offset computation, not allocator luck.
        views = [aligned_view(n) for n in range(1, 128)]
        assert all(is_aligned(v) for v in views)

    def test_alignment_beyond_default_quantum(self):
        view = aligned_view(16, align=8192)
        assert address_of(view) % 8192 == 0


class TestResizeSafety:
    def test_backing_cannot_resize_while_view_live(self):
        view = aligned_view(16)
        backing = view.obj
        assert isinstance(backing, bytearray)
        with pytest.raises(BufferError):
            backing.extend(b"\x00")
        with pytest.raises(BufferError):
            backing.clear()
        # The view is still intact and writable after the refused
        # resize attempts.
        view[0] = 1
        assert view[0] == 1

    def test_ctypes_export_also_pins_backing(self):
        view = aligned_view(16)
        arr = as_ctypes_u8(view)
        with pytest.raises(BufferError):
            view.obj.extend(b"\x00")
        arr[0] = 9
        assert view[0] == 9


class TestZeroCopyIdentity:
    def test_ctypes_array_shares_address(self):
        view = aligned_view(64)
        arr = as_ctypes_u8(view)
        assert ctypes.addressof(arr) == address_of(view)
        assert ctypes.addressof(arr) % ALIGNMENT == 0

    def test_mutations_visible_both_ways(self):
        view = aligned_view(8)
        arr = as_ctypes_u8(view)
        arr[2] = 0x7F
        assert view[2] == 0x7F
        view[5] = 0x33
        assert arr[5] == 0x33

    def test_empty_view_gets_detached_array(self):
        view = aligned_view(0)
        arr = as_ctypes_u8(view)
        assert len(arr) == 1
        arr[0] = 0xFF  # scratch byte, not backed by the view


class TestIsAligned:
    def test_zero_length_counts_as_aligned(self):
        assert is_aligned(memoryview(bytearray())[0:0])

    def test_misaligned_slice_detected(self):
        view = aligned_view(ALIGNMENT * 2)
        assert is_aligned(view)
        assert not is_aligned(view[1:])
        assert is_aligned(view[ALIGNMENT:])


class TestMemoryAlignment:
    def test_memory_raw_is_aligned(self):
        mem = Memory(1000)
        assert is_aligned(mem.raw())

    def test_clone_preserves_alignment_and_content(self):
        mem = Memory(256)
        mem.raw()[:4] = b"\x01\x02\x03\x04"
        dup = mem.clone()
        assert is_aligned(dup.raw())
        assert dup.snapshot() == mem.snapshot()
        dup.raw()[0] = 0xEE
        assert mem.raw()[0] == 0x01  # clones don't share storage

    def test_pickle_roundtrip_stays_aligned(self):
        mem = Memory(128, fill=0x42)
        mem.raw()[7] = 0x99
        back = pickle.loads(pickle.dumps(mem))
        assert back.snapshot() == mem.snapshot()
        assert is_aligned(back.raw())
