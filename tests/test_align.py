"""Tests for the stream-offset lattice and alignment analysis."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.align import (
    ANY,
    KnownOffset,
    RuntimeOffset,
    ZERO,
    compatible,
    distinct_alignments,
    loop_offsets,
    merge,
    merge_all,
    misaligned_fraction,
    misaligned_stream_count,
    ref_offset,
    ref_offset_sexpr,
)
from repro.errors import AlignmentError
from repro.ir import ArrayDecl, INT16, INT32, LoopBuilder, Ref, figure1_loop
from repro.machine import ArraySpace
from repro.machine.interp import _eval_s, _Env  # noqa: F401 - exercised below
from repro.vir.vexpr import SBase, SBin, SConst


class TestOffsetLattice:
    def test_known_equality(self):
        assert KnownOffset(4) == KnownOffset(4)
        assert KnownOffset(4) != KnownOffset(8)
        assert KnownOffset(0) == ZERO

    def test_negative_rejected(self):
        with pytest.raises(AlignmentError):
            KnownOffset(-4)

    def test_compatibility_rules(self):
        assert compatible(ANY, KnownOffset(12))
        assert compatible(KnownOffset(12), ANY)
        assert compatible(ANY, ANY)
        assert compatible(KnownOffset(4), KnownOffset(4))
        assert not compatible(KnownOffset(4), KnownOffset(8))
        assert compatible(RuntimeOffset("b", 1), RuntimeOffset("b", 1))
        assert not compatible(RuntimeOffset("b", 1), RuntimeOffset("b", 2))
        assert not compatible(RuntimeOffset("b", 1), RuntimeOffset("c", 1))
        # runtime offsets never provably equal a known offset
        assert not compatible(RuntimeOffset("b", 0), KnownOffset(0))

    def test_merge(self):
        assert merge(ANY, KnownOffset(8)) == KnownOffset(8)
        assert merge(KnownOffset(8), ANY) == KnownOffset(8)
        with pytest.raises(AlignmentError):
            merge(KnownOffset(8), KnownOffset(4))
        assert merge_all([]) == ANY
        assert merge_all([ANY, KnownOffset(4), KnownOffset(4)]) == KnownOffset(4)

    def test_predicates(self):
        assert KnownOffset(0).is_known and not KnownOffset(0).is_runtime
        assert RuntimeOffset("a", 0).is_runtime
        assert ANY.is_any


class TestRefOffsets:
    def test_paper_figure1_offsets(self):
        loop = figure1_loop()
        stmt = loop.statements[0]
        offs = loop_offsets(loop, 16)
        assert offs[stmt.target] == KnownOffset(12)       # a[i+3]
        b_ref, c_ref = stmt.loads()
        assert offs[b_ref] == KnownOffset(4)              # b[i+1]
        assert offs[c_ref] == KnownOffset(8)              # c[i+2]

    def test_base_alignment_participates(self):
        a = ArrayDecl("a", INT32, 32, align=8)
        assert ref_offset(Ref(a, 1), 16) == KnownOffset(12)
        assert ref_offset(Ref(a, 2), 16) == KnownOffset(0)

    def test_runtime_relative_alignment_keys(self):
        a = ArrayDecl("a", INT32, 64, align=None)
        assert ref_offset(Ref(a, 1), 16) == ref_offset(Ref(a, 5), 16)
        assert ref_offset(Ref(a, 1), 16) != ref_offset(Ref(a, 2), 16)

    def test_bad_vector_length(self):
        a = ArrayDecl("a", INT32, 8)
        with pytest.raises(AlignmentError):
            ref_offset(Ref(a, 0), 6)

    @given(st.integers(0, 3), st.integers(0, 20), st.sampled_from([INT16, INT32]))
    def test_offset_matches_concrete_address(self, align_idx, elem, dtype):
        V = 16
        align = align_idx * dtype.size
        decl = ArrayDecl("arr", dtype, 64, align=align)
        off = ref_offset(Ref(decl, elem), V)
        space = ArraySpace(V)
        space.place(decl)
        addr = space["arr"].addr(elem)
        assert isinstance(off, KnownOffset)
        assert off.value == addr % V

    def test_runtime_sexpr_masks_base(self):
        a = ArrayDecl("a", INT32, 64, align=None)
        expr = ref_offset_sexpr(Ref(a, 1), 16)
        assert isinstance(expr, SBin) and expr.op == "and"
        # compile-time arrays fold to a constant
        b = ArrayDecl("b", INT32, 64, align=4)
        assert ref_offset_sexpr(Ref(b, 1), 16) == SConst(8)


class TestLoopAnalysis:
    def test_misaligned_fraction(self):
        loop = figure1_loop()
        assert misaligned_fraction(loop, 16) == 1.0
        lb = LoopBuilder(trip=10)
        a = lb.array("a", "int32", 32)
        b = lb.array("b", "int32", 32)
        lb.assign(a[0], b[0] + b[1])
        assert misaligned_fraction(lb.build(), 16) == pytest.approx(1 / 3)

    def test_distinct_alignments(self):
        loop = figure1_loop()
        assert distinct_alignments(loop, 16, 0) == 3
        lb = LoopBuilder(trip=10)
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        c = lb.array("c", "int32", 64)
        lb.assign(a[1], b[1] + c[5])
        assert distinct_alignments(lb.build(), 16, 0) == 1

    def test_misaligned_stream_count_dedupes_congruent(self):
        lb = LoopBuilder(trip=10)
        a = lb.array("a", "int32", 64)
        b = lb.array("b", "int32", 64)
        lb.assign(a[0], b[1] + b[5])  # same stream offset class? no: 1 != 5 mod 4... they are congruent
        loop = lb.build()
        # b[1] and b[5] are congruent mod B=4 -> one misaligned stream;
        # the store a[0] is aligned.
        assert misaligned_stream_count(loop, 16, 0) == 1
