"""Tests for saturating arithmetic and benchmark result rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CodegenError
from repro.export import export_c, find_compiler, cross_validate
from repro.ir import INT8, INT16, INT32, LoopBuilder, UINT8
from repro.ir.types import SADD, SSUB
from repro.lang import compile_source
from repro.simdize import SimdOptions, simdize

from conftest import check_loop


class TestSaturatingSemantics:
    def test_signed_clamping(self):
        assert SADD.apply(100, 100, INT8) == 127
        assert SADD.apply(-100, -100, INT8) == -128
        assert SADD.apply(3, 4, INT8) == 7
        assert SSUB.apply(-100, 100, INT8) == -128
        assert SSUB.apply(100, -100, INT8) == 127

    def test_unsigned_clamping(self):
        assert SADD.apply(200, 100, UINT8) == 255
        assert SSUB.apply(10, 20, UINT8) == 0

    def test_not_reassociable(self):
        # (100 sadd 100) ssub 100 != 100 sadd (100 ssub 100) on int8
        assert not SADD.associative
        lhs = SSUB.apply(SADD.apply(100, 100, INT8), 100, INT8)
        rhs = SADD.apply(100, SSUB.apply(100, 100, INT8), INT8)
        assert lhs != rhs

    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_sadd_in_range(self, a, b):
        out = SADD.apply(a, b, INT8)
        assert -128 <= out <= 127
        assert out == min(max(a + b, -128), 127)

    def test_reduction_rejects_saturating_ops(self):
        from repro.errors import IRError

        lb = LoopBuilder(trip=20)
        out = lb.array("out", "int8", 4)
        b = lb.array("b", "int8", 40)
        lb.reduce(out, 0, SADD, b[0])
        with pytest.raises(IRError, match="associative"):
            lb.build()


class TestSaturatingVectorization:
    def test_vm_equivalence(self):
        loop = compile_source("""
            char y[200] align 3;
            char u[200];
            char v[200] align 9;
            for (i = 0; i < 150; i++) { y[i+1] = ssub(sadd(u[i+2], v[i]), 5); }
        """)
        for reuse in ("none", "sp", "pc"):
            check_loop(loop, SimdOptions(reuse=reuse, unroll=2))

    def test_sse_emission_uses_adds(self):
        loop = compile_source(
            "short a[200]; short b[200];"
            "for (i = 0; i < 150; i++) { a[i+1] = sadd(b[i+3], 7); }")
        src = export_c(simdize(loop).program, "sse")
        assert "_mm_adds_epi16" in src

    def test_altivec_emission_uses_vec_adds(self):
        loop = compile_source(
            "unsigned char a[200]; unsigned char b[200];"
            "for (i = 0; i < 150; i++) { a[i+1] = sadd(b[i+3], 7); }")
        src = export_c(simdize(loop).program, "altivec")
        assert "vec_adds" in src

    def test_sse_rejects_32bit_saturation(self):
        loop = compile_source(
            "int a[200]; int b[200];"
            "for (i = 0; i < 150; i++) { a[i+1] = sadd(b[i+3], 7); }")
        with pytest.raises(CodegenError, match="32-bit saturating"):
            export_c(simdize(loop).program, "sse")

    @pytest.mark.skipif(find_compiler() is None, reason="no C compiler")
    def test_compiled_saturation_matches(self):
        loop = compile_source("""
            char y[300] align 1;
            char u[300] align 7;
            for (i = 0; i < 250; i++) { y[i] = sadd(u[i+2], u[i+5]); }
        """)
        assert cross_validate(loop, SimdOptions(reuse="sp", unroll=2)).passed


class TestReporting:
    def _figure(self):
        from repro.bench import figure11

        return figure11(count=2, trip=61)

    def test_figure_chart(self):
        from repro.bench.reporting import figure_chart

        chart = figure_chart(self._figure())
        assert "█" in chart and "LAZY-pc" in chart
        assert "lower bound" in chart

    def test_figure_markdown(self):
        from repro.bench.reporting import figure_markdown

        md = figure_markdown(self._figure())
        assert md.count("|") > 20
        assert "| scheme |" in md

    def test_table_markdown(self):
        from repro.bench import measure_row, TableResult
        from repro.bench.reporting import table_markdown

        row = measure_row(1, 2, INT32, count=2, trip=61)
        md = table_markdown(TableResult("t", 4, [row]))
        assert "| S1*L2 |" in md

    def test_comparison_markdown(self):
        from repro.bench.reporting import comparison_markdown

        md = comparison_markdown("Figure 11", {"best": 4.022, "zero": 4.963},
                                 {"best": 4.344})
        assert "| best | 4.022 | 4.344 | 1.08 |" in md
        assert "| zero | 4.963 | — | — |" in md
