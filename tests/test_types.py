"""Unit and property tests for element types and lane operators."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IRError
from repro.ir.types import (
    ADD,
    ALL_OPS,
    ALL_TYPES,
    AVG,
    INT8,
    INT16,
    INT32,
    MAX,
    MIN,
    MUL,
    SUB,
    UINT8,
    UINT16,
    DataType,
    op_by_name,
    type_by_name,
)


class TestDataType:
    def test_sizes_and_signedness(self):
        assert INT8.size == 1 and INT8.signed
        assert INT16.size == 2 and INT16.signed
        assert INT32.size == 4 and INT32.signed
        assert UINT8.size == 1 and not UINT8.signed

    def test_bad_size_rejected(self):
        with pytest.raises(IRError):
            DataType("odd", 3, signed=True)

    def test_ranges(self):
        assert (INT8.min_value, INT8.max_value) == (-128, 127)
        assert (UINT8.min_value, UINT8.max_value) == (0, 255)
        assert INT16.max_value == 32767
        assert INT32.min_value == -(2**31)

    def test_wrap_signed(self):
        assert INT8.wrap(127) == 127
        assert INT8.wrap(128) == -128
        assert INT8.wrap(-129) == 127
        assert INT16.wrap(0x18000) == -0x8000

    def test_wrap_unsigned(self):
        assert UINT8.wrap(256) == 0
        assert UINT8.wrap(-1) == 255
        assert UINT16.wrap(0x1FFFF) == 0xFFFF

    def test_bytes_roundtrip_basic(self):
        assert INT32.to_bytes(-1) == b"\xff\xff\xff\xff"
        assert INT16.from_bytes(b"\x34\x12") == 0x1234
        with pytest.raises(IRError):
            INT16.from_bytes(b"\x00")

    @given(st.sampled_from(ALL_TYPES), st.integers(-(2**40), 2**40))
    def test_bytes_roundtrip_property(self, dtype, value):
        wrapped = dtype.wrap(value)
        assert dtype.min_value <= wrapped <= dtype.max_value
        assert dtype.from_bytes(dtype.to_bytes(wrapped)) == wrapped

    @given(st.sampled_from(ALL_TYPES), st.integers(), st.integers())
    def test_wrap_is_congruent(self, dtype, a, b):
        # wrap respects modular arithmetic: wrap(a)+wrap(b) ≡ a+b.
        lhs = dtype.wrap(dtype.wrap(a) + dtype.wrap(b))
        rhs = dtype.wrap(a + b)
        assert lhs == rhs

    def test_lookup_by_name_and_alias(self):
        assert type_by_name("int32") is INT32
        assert type_by_name("int") is INT32
        assert type_by_name("short") is INT16
        assert type_by_name("unsigned char") is UINT8
        with pytest.raises(IRError):
            type_by_name("float")


class TestBinaryOps:
    def test_semantics(self):
        assert ADD.apply(3, 4, INT32) == 7
        assert SUB.apply(3, 4, INT32) == -1
        assert MUL.apply(300, 300, INT16) == INT16.wrap(90000)
        assert MIN.apply(-5, 2, INT8) == -5
        assert MAX.apply(-5, 2, INT8) == 2
        assert AVG.apply(3, 5, INT8) == 4

    def test_wrapping_semantics(self):
        assert ADD.apply(127, 1, INT8) == -128
        assert ADD.apply(255, 1, UINT8) == 0
        assert MUL.apply(2**30, 4, INT32) == 0

    def test_lookup(self):
        assert op_by_name("add") is ADD
        assert op_by_name("+") is ADD
        assert op_by_name("min") is MIN
        with pytest.raises(IRError):
            op_by_name("div")

    @given(
        st.sampled_from([op for op in ALL_OPS if op.commutative]),
        st.sampled_from(ALL_TYPES),
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
    )
    def test_commutativity_claims_hold(self, op, dtype, a, b):
        a, b = dtype.wrap(a), dtype.wrap(b)
        assert op.apply(a, b, dtype) == op.apply(b, a, dtype)

    @given(
        st.sampled_from([op for op in ALL_OPS if op.associative]),
        st.sampled_from(ALL_TYPES),
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
        st.integers(-1000, 1000),
    )
    def test_associativity_claims_hold(self, op, dtype, a, b, c):
        a, b, c = dtype.wrap(a), dtype.wrap(b), dtype.wrap(c)
        lhs = op.apply(op.apply(a, b, dtype), c, dtype)
        rhs = op.apply(a, op.apply(b, c, dtype), dtype)
        assert lhs == rhs

    def test_avg_is_not_marked_associative(self):
        # (a avg b) avg c != a avg (b avg c) in general — the flag
        # gates OffsetReassoc, so it must stay false.
        assert not AVG.associative
        assert not SUB.associative
        assert not SUB.commutative
