"""Tests for the benchmark harness: synthesizer, LB model, runner, tables."""

import pytest

from repro.align import ref_offset, KnownOffset
from repro.bench import (
    SynthParams,
    lower_bound,
    measure_loop,
    measure_row,
    measure_suite,
    seq_opd,
    synthesize,
    synthesize_suite,
)
from repro.bench.figures import figure
from repro.errors import BenchError
from repro.ir.types import INT16, INT32
from repro.simdize import SimdOptions


class TestSynthesizer:
    def test_shape_parameters_honoured(self):
        params = SynthParams(loads=5, statements=3, trip=64)
        loop = synthesize(params, seed=3).loop
        assert len(loop.statements) == 3
        for stmt in loop.statements:
            assert len(stmt.loads()) == 5
        assert loop.upper == 64

    def test_intended_alignments_realized(self):
        params = SynthParams(loads=4, statements=2, trip=64, bias=0.5, reuse=0.5)
        syn = synthesize(params, seed=7)
        for (name, offset), want in syn.ref_alignments.items():
            decl = next(a for a in syn.loop.arrays() if a.name == name)
            from repro.ir.expr import Ref

            got = ref_offset(Ref(decl, offset), 16)
            assert got == KnownOffset(want), (name, offset)

    def test_full_bias_gives_single_alignment(self):
        params = SynthParams(loads=4, statements=2, trip=64, bias=1.0, reuse=0.0)
        syn = synthesize(params, seed=11)
        aligns = set(syn.ref_alignments.values())
        assert len(aligns) == 1

    def test_reuse_shares_arrays_across_statements(self):
        params = SynthParams(loads=4, statements=4, trip=64, reuse=1.0)
        loop = synthesize(params, seed=5).loop
        arrays = loop.load_arrays()
        assert len(arrays) < 4 * 4  # heavy sharing

    def test_no_reuse_gives_distinct_arrays(self):
        params = SynthParams(loads=4, statements=4, trip=64, reuse=0.0)
        loop = synthesize(params, seed=5).loop
        assert len(loop.load_arrays()) == 16

    def test_within_statement_arrays_distinct(self):
        params = SynthParams(loads=6, statements=3, trip=64, reuse=1.0)
        loop = synthesize(params, seed=9).loop
        for stmt in loop.statements:
            names = [r.array.name for r in stmt.loads()]
            assert len(names) == len(set(names))

    def test_runtime_modes(self):
        params = SynthParams(loads=2, trip=64, runtime_alignment=True,
                             runtime_trip=True)
        syn = synthesize(params, seed=1)
        assert syn.loop.runtime_alignment()
        assert syn.loop.runtime_upper
        assert set(syn.base_residues) == {a.name for a in syn.loop.arrays()}

    def test_suite_has_distinct_seeds(self):
        suite = synthesize_suite(SynthParams(loads=2, trip=30), count=5)
        assert len({s.seed for s in suite}) == 5

    def test_bad_params_rejected(self):
        with pytest.raises(BenchError):
            SynthParams(loads=0)
        with pytest.raises(BenchError):
            SynthParams(loads=1, bias=1.5)
        with pytest.raises(BenchError):
            SynthParams(loads=1, statements=0)

    def test_label(self):
        assert SynthParams(loads=8, statements=4).label == "S4*L8"


class TestLowerBound:
    def test_figure1_lower_bound(self):
        from repro.ir import figure1_loop

        loop = figure1_loop()
        lb = lower_bound(loop, 16, zero_shift=False)
        # 2 load streams + 1 store + (3 distinct alignments - 1) shifts
        # + 1 add, all over 4 data
        assert lb.loads == pytest.approx(2 / 4)
        assert lb.stores == pytest.approx(1 / 4)
        assert lb.shifts == pytest.approx(2 / 4)
        assert lb.arith == pytest.approx(1 / 4)
        assert lb.opd == pytest.approx(6 / 4)

    def test_zero_shift_counts_misaligned_streams(self):
        from repro.ir import figure1_loop

        lb = lower_bound(figure1_loop(), 16, zero_shift=True)
        assert lb.shifts == pytest.approx(3 / 4)  # b, c, and the store

    def test_runtime_zero_counts_all_streams(self):
        params = SynthParams(loads=6, statements=1, trip=64,
                             runtime_alignment=True)
        syn = synthesize(params, seed=0)
        lb_rt = lower_bound(syn.loop, 16, zero_shift=True,
                            runtime_alignment=True, residues=syn.base_residues)
        # 6 loads + 1 store all must be shifted
        assert lb_rt.shifts == pytest.approx(7 / 4)

    def test_paper_runtime_l6_lower_bound(self):
        """Figure 11's runtime LB is 4.750 opd for S1*L6 suites."""
        suite = synthesize_suite(
            SynthParams(loads=6, statements=1, trip=64, runtime_alignment=True),
            count=20,
        )
        values = [
            lower_bound(s.loop, 16, zero_shift=True, runtime_alignment=True,
                        residues=s.base_residues).opd
            for s in suite
        ]
        assert sum(values) / len(values) == pytest.approx(4.75, abs=0.01)

    def test_same_vector_loads_dedupe(self):
        from repro.ir import LoopBuilder

        lb_ = LoopBuilder(trip=40)
        a = lb_.array("a", "int32", 64)
        b = lb_.array("b", "int32", 64)
        lb_.assign(a[0], b[0] + b[1])  # same 16-byte line
        bound = lower_bound(lb_.build(), 16)
        assert bound.loads == pytest.approx(1 / 4)

    def test_seq_opd(self):
        params = SynthParams(loads=6, statements=1, trip=64)
        assert seq_opd(synthesize(params, seed=0).loop) == 12.0

    def test_runtime_residues_required(self):
        params = SynthParams(loads=2, trip=64, runtime_alignment=True)
        syn = synthesize(params, seed=0)
        with pytest.raises(BenchError, match="residue"):
            lower_bound(syn.loop, 16)


class TestRunnerAndTables:
    def test_measurement_fields_consistent(self):
        params = SynthParams(loads=3, statements=1, trip=61)
        syn = synthesize(params, seed=2)
        m = measure_loop(syn, SimdOptions(policy="lazy", reuse="sp", unroll=2))
        assert m.opd == pytest.approx(m.vector_ops / m.data_count)
        assert m.speedup == pytest.approx(m.scalar_ops / m.vector_ops)
        assert m.opd >= m.lb.opd * 0.99
        assert m.opd == pytest.approx(
            m.lb.opd + m.shift_overhead + m.other_overhead, rel=1e-6)

    def test_suite_aggregation_is_ratio_of_sums(self):
        suite = synthesize_suite(SynthParams(loads=2, trip=61), count=3)
        res = measure_suite(suite, SimdOptions(reuse="sp", unroll=2))
        ops = sum(m.vector_ops for m in res.measurements)
        data = sum(m.data_count for m in res.measurements)
        assert res.opd == pytest.approx(ops / data)

    def test_measured_opd_never_below_lower_bound(self):
        suite = synthesize_suite(SynthParams(loads=4, trip=61), count=6)
        for options in (SimdOptions(policy="zero", reuse="sp", unroll=4),
                        SimdOptions(policy="dominant", reuse="pc", unroll=4)):
            res = measure_suite(suite, options)
            for m in res.measurements:
                assert m.opd >= m.lb.opd - 1e-9

    def test_table_row_shape(self):
        row = measure_row(1, 2, INT32, count=3, trip=61)
        assert row.label == "S1*L2"
        assert row.compile_best.speedup >= row.all_compile["ZERO-sp"].speedup
        assert set(row.all_runtime) == {"ZERO-pc", "ZERO-sp"}
        assert "S1*L2" in row.format()

    def test_short_int_rows_reach_higher_speedups(self):
        int_row = measure_row(1, 4, INT32, count=3, trip=121)
        short_row = measure_row(1, 4, INT16, count=3, trip=121)
        assert short_row.compile_best.speedup > int_row.compile_best.speedup

    def test_figure_bars(self):
        fig = figure(offset_reassoc=False, count=2, trip=61)
        labels = [bar.label for bar in fig.bars]
        assert "LAZY-pc" in labels and "ZERO-sp(runtime)" in labels
        assert fig.seq_opd == 12.0
        best = fig.best()
        assert best.total <= fig.bar("ZERO").total
        assert "total" in fig.format()


class TestSimdizeCache:
    """The per-process simdize memo is a bounded LRU, not a FIFO."""

    @pytest.fixture(autouse=True)
    def _small_empty_cache(self, monkeypatch):
        from repro.bench import runner

        monkeypatch.setattr(runner, "_SIMDIZE_CACHE_MAX", 3)
        runner._SIMDIZE_CACHE.clear()
        yield
        runner._SIMDIZE_CACHE.clear()

    @staticmethod
    def _loops(n):
        from repro.ir import LoopBuilder

        loops = []
        for k in range(n):
            lb = LoopBuilder(trip=40 + k)
            a = lb.array("a", "int32", 128)
            b = lb.array("b", "int32", 128)
            lb.assign(a[1], b[2])
            loops.append(lb.build())
        return loops

    def test_hit_refreshes_recency(self):
        """Touching an old entry saves it from the next eviction."""
        from repro.bench.runner import _SIMDIZE_CACHE, _cached_simdize

        loops = self._loops(4)
        options = SimdOptions()
        for loop in loops[:3]:
            _cached_simdize(loop, 16, options)
        assert len(_SIMDIZE_CACHE) == 3
        _cached_simdize(loops[0], 16, options)   # hit: loops[0] now newest
        _cached_simdize(loops[3], 16, options)   # overflow: evicts loops[1]
        keys = {sig for sig, _, _ in _SIMDIZE_CACHE}
        assert loops[0].signature() in keys      # survived (a FIFO would drop it)
        assert loops[1].signature() not in keys  # the true least-recent went
        assert loops[3].signature() in keys
        assert len(_SIMDIZE_CACHE) == 3

    def test_hit_returns_same_object_and_counts(self):
        from repro.bench.runner import _cached_simdize
        from repro.profiling import PhaseProfile

        loop = self._loops(1)[0]
        profile = PhaseProfile()
        first = _cached_simdize(loop, 16, SimdOptions(), profile)
        second = _cached_simdize(loop, 16, SimdOptions(), profile)
        assert first is second
        assert profile.counts["simdize_memo_misses"] == 1
        assert profile.counts["simdize_memo_hits"] == 1

    def test_disk_cache_survives_memo_clear(self):
        """A cleared memo refills from the disk cache without re-running
        the simdizer (the cross-worker sharing path)."""
        from repro.bench import runner
        from repro.profiling import PhaseProfile

        loop = self._loops(1)[0]
        first = runner._cached_simdize(loop, 16, SimdOptions())
        runner._SIMDIZE_CACHE.clear()
        profile = PhaseProfile()
        second = runner._cached_simdize(loop, 16, SimdOptions(), profile)
        assert profile.counts.get("simdize_disk_hits", 0) == 1
        assert second is not first            # deserialized copy …
        assert (second.program.source.signature()
                == first.program.source.signature())  # … of the same result
