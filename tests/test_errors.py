"""Tests for the exception hierarchy and error ergonomics."""

import pytest

from repro import errors


def test_hierarchy():
    for cls in (errors.IRError, errors.FrontendError, errors.AlignmentError,
                errors.GraphError, errors.PolicyError, errors.CodegenError,
                errors.MachineError, errors.VerificationError, errors.BenchError):
        assert issubclass(cls, errors.SimdalError)
    for cls in (errors.LexError, errors.ParseError, errors.SemanticError):
        assert issubclass(cls, errors.FrontendError)


def test_frontend_errors_carry_location():
    err = errors.ParseError("boom", line=3, col=7)
    assert err.line == 3 and err.col == 7
    assert str(err).startswith("3:7:")
    err2 = errors.SemanticError("boom", line=2)
    assert str(err2).startswith("2:?:")
    err3 = errors.LexError("boom")
    assert str(err3) == "boom"


def test_single_catch_point():
    from repro.lang import compile_source

    with pytest.raises(errors.SimdalError):
        compile_source("not a program")
