"""The vector-extension emitter mode: parity, probing, fallback.

The native tier now carries two emitters — the portable scalar-lane
one and a vector-extension one mapping ``simdal_vec`` onto
``__attribute__((vector_size))`` types with aligned loads/stores.
These tests pin the contract around the second mode:

* **differential parity** — scalar-lane, vector-extension, and the
  bytes oracle produce byte-identical memories and bit-identical
  counters, on fixed figures and on hypothesis-drawn loops;
* **capability probing** — a toolchain that rejects the vector
  idioms (probed with a real ``cc`` wrapper that refuses any TU
  containing ``vector_size``) silently lands the tier on the
  scalar-lane emitter with correct results, no degradation to jit;
* **cache hygiene** — ``reset_compiler_cache`` clears the flag and
  capability memos, ``REPRO_CC_FLAGS`` changes re-resolve without a
  reset, ``set_simd_mode`` drops the in-process kernel cache, and the
  disk key separates modes and flag sets.

Everything needing a compiler is guarded by ``needs_cc``; the memo
and disk-key tests run anywhere numpy does.
"""

import random
import shutil

import pytest
from hypothesis import HealthCheck, assume, given, settings

from repro.errors import PolicyError
from repro.machine import RunBindings, get_backend, numpy_available
from repro.simdize import SimdOptions, fill_random, make_space, simdize

from conftest import build_fig1
from test_differential import differential_case

pytestmark = pytest.mark.skipif(not numpy_available(),
                                reason="numpy not installed")

if numpy_available():
    from repro.machine import jit, native

HAVE_CC = numpy_available() and native._compiler_identity()[0] is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no host C compiler")
HAVE_SIMD = HAVE_CC and native.simd_supported()
needs_simd = pytest.mark.skipif(
    not HAVE_SIMD, reason="compiler fails the vector-extension probe")


@pytest.fixture(autouse=True)
def _fresh_caches():
    jit.clear_memory_cache()
    native.clear_memory_cache()
    yield
    native.set_simd_mode(None)
    jit.clear_memory_cache()
    native.clear_memory_cache()


@pytest.fixture
def _fresh_probes():
    """For tests that repoint REPRO_CC / REPRO_CC_FLAGS: probe cold,
    and leave no poisoned memo behind for later tests."""
    native.reset_compiler_cache()
    yield
    native.reset_compiler_cache()


def run_both_modes(program, trip=None, seed=9):
    """(bytes, scalar-lane native, vector-ext native) outcome tuples
    for one program on clones of one random memory image."""
    loop = program.source
    rand = random.Random(seed)
    space = make_space(loop, program.V, rand)
    base = space.make_memory()
    fill_random(space, base, rand)
    bindings = RunBindings(trip=trip)

    def execute(name):
        mem = base.clone()
        run = get_backend(name).run(program, space, mem, bindings)
        return (mem.snapshot(), run.counters.as_dict(),
                run.trip, run.used_fallback)

    outcomes = {"bytes": execute("bytes")}
    for label, mode in (("scalar-lane", False), ("vector-ext", True)):
        native.set_simd_mode(mode)
        outcomes[label] = execute("native")
    native.set_simd_mode(None)
    return outcomes


def assert_all_equal(outcomes):
    b = outcomes["bytes"]
    for name, got in outcomes.items():
        if name == "bytes":
            continue
        assert b[0] == got[0], f"final memory differs (bytes vs {name})"
        assert b[1] == got[1], \
            f"operation counters differ (bytes vs {name})"
        assert b[2:] == got[2:]
        assert got[3] is False, f"{name} degraded instead of running native"


class TestModeParity:
    @needs_simd
    @pytest.mark.parametrize("policy", ["zero", "eager", "lazy", "dominant"])
    def test_fig1_both_modes_match_bytes(self, policy):
        program = simdize(build_fig1(trip=100), 16,
                          SimdOptions(policy=policy, reuse="sp")).program
        assert_all_equal(run_both_modes(program))

    @needs_simd
    def test_both_emitters_actually_ran(self):
        """The parity above must exercise *both* preludes, not one
        kernel twice: each mode emits its own C source."""
        before = (native.STATS["simd_kernels"],
                  native.STATS["scalar_kernels"])
        program = simdize(build_fig1(trip=67), 16, SimdOptions()).program
        run_both_modes(program)
        after = (native.STATS["simd_kernels"],
                 native.STATS["scalar_kernels"])
        assert after[0] > before[0], "no vector-ext kernel was emitted"
        assert after[1] > before[1], "no scalar-lane kernel was emitted"

    @needs_simd
    def test_figure_sweep_config_both_modes(self):
        """One Figure-11 sweep config (runtime alignment, runtime
        trip) through both emitters — the shape the fig11 CSV
        acceptance check exercises in bulk."""
        from repro.bench import figure_configs
        from repro.bench.runner import _cached_simdize
        from repro.bench.synth import synthesize

        label, config = next(iter(figure_configs(False, count=1, trip=67)))
        syn = synthesize(config.params, config.seed, config.V)
        result = _cached_simdize(syn.loop, config.V, config.options)
        rand = random.Random(config.seed ^ 0x5EED)
        space = make_space(syn.loop, config.V, rand, syn.base_residues)
        base = space.make_memory()
        fill_random(space, base, rand)
        trip = config.params.trip if syn.loop.runtime_upper else None
        bindings = RunBindings(trip=trip)

        outcomes = {}
        mem = base.clone()
        run = get_backend("bytes").run(result.program, space, mem, bindings)
        outcomes["bytes"] = (mem.snapshot(), run.counters.as_dict(),
                             run.trip, run.used_fallback)
        for name, mode in (("scalar-lane", False), ("vector-ext", True)):
            native.set_simd_mode(mode)
            mem = base.clone()
            run = get_backend("native").run(result.program, space, mem,
                                            bindings)
            outcomes[name] = (mem.snapshot(), run.counters.as_dict(),
                              run.trip, run.used_fallback)
        assert_all_equal(outcomes)

    @needs_simd
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(differential_case())
    def test_modes_agree_on_random_loops(self, case):
        syn, options = case
        try:
            result = simdize(syn.loop, 16, options)
        except PolicyError:
            assume(False)
        trip = syn.params.trip if syn.loop.runtime_upper else None
        outcomes = run_both_modes(result.program, trip=trip,
                                  seed=syn.seed ^ 0xA11)
        b = outcomes["bytes"]
        for name in ("scalar-lane", "vector-ext"):
            got = outcomes[name]
            assert b[0] == got[0], f"final memory differs (bytes vs {name})"
            assert b[1] == got[1]
            assert b[2] == got[2]


class TestProbeFallback:
    @pytest.fixture
    def novec_cc(self, tmp_path):
        """A real compiler wrapped to reject any TU that uses the
        vector extensions — models GCC < 12 / exotic toolchains."""
        cc, _ = native._compiler_identity()
        real = shutil.which(cc) or cc
        script = tmp_path / "novec-cc"
        script.write_text(
            "#!/bin/sh\n"
            'for arg in "$@"; do\n'
            '  case "$arg" in\n'
            "    *.c)\n"
            '      if grep -q vector_size "$arg"; then\n'
            '        echo "novec-cc: vector extensions unsupported" >&2\n'
            "        exit 1\n"
            "      fi ;;\n"
            "  esac\n"
            "done\n"
            f'exec "{real}" "$@"\n'
        )
        script.chmod(0o755)
        return str(script)

    @needs_cc
    def test_probe_failure_falls_back_silently(self, monkeypatch, novec_cc,
                                               _fresh_probes):
        monkeypatch.setenv("REPRO_CC", novec_cc)
        failures = native.STATS["simd_probe_failures"]
        assert native.simd_supported() is False
        assert native.STATS["simd_probe_failures"] == failures + 1
        assert native.emitter_mode() == "scalar-lane"

        # The tier still compiles and runs — on the scalar-lane
        # emitter, byte-identical to the oracle, no jit degradation.
        program = simdize(build_fig1(trip=100), 16, SimdOptions()).program
        loop = program.source
        rand = random.Random(3)
        space = make_space(loop, program.V, rand)
        base = space.make_memory()
        fill_random(space, base, rand)
        runs = {}
        for name in ("bytes", "native"):
            mem = base.clone()
            run = get_backend(name).run(program, space, mem, RunBindings())
            runs[name] = (mem.snapshot(), run.counters.as_dict(),
                          run.trip, run.used_fallback)
        assert runs["bytes"] == runs["native"]
        assert runs["native"][3] is False
        kernel = native.get_native_kernel(program)
        assert kernel.cfn is not None

    @needs_cc
    def test_env_opt_out_forces_scalar_lane(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SIMD", "0")
        assert native.simd_enabled() is False
        assert native.emitter_mode() == "scalar-lane"

    def test_override_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SIMD", "0")
        native.set_simd_mode(True)
        assert native.simd_enabled() is True
        native.set_simd_mode(False)
        assert native.simd_enabled() is False


class TestCompilerCacheHygiene:
    def test_reset_clears_flag_and_simd_memos(self, _fresh_probes):
        native.compiler_flags()
        native.simd_supported()
        assert native._FLAGS is not None
        assert native._SIMD is not None
        native.reset_compiler_cache()
        assert native._CC is None
        assert native._FLAGS is None
        assert native._SIMD is None

    def test_cc_flags_env_change_reresolves(self, monkeypatch,
                                            _fresh_probes):
        """A changed REPRO_CC_FLAGS takes effect immediately — the
        memo is keyed on the env pair, no reset required."""
        monkeypatch.setenv("REPRO_CC_FLAGS", "-O2 -fno-tree-vectorize")
        assert native.compiler_flags() == ("-O3", "-O2",
                                           "-fno-tree-vectorize")
        monkeypatch.setenv("REPRO_CC_FLAGS", "-Os")
        assert native.compiler_flags() == ("-O3", "-Os")
        monkeypatch.delenv("REPRO_CC_FLAGS")
        flags = native.compiler_flags()
        assert flags[0] == "-O3"
        assert "-Os" not in flags  # back on the probed default

    def test_cc_flags_env_changes_disk_key(self, monkeypatch,
                                           _fresh_probes):
        native.set_simd_mode(False)
        monkeypatch.setenv("REPRO_CC_FLAGS", "-O2")
        key_o2 = native._disk_key("sig", "cc-id")
        monkeypatch.setenv("REPRO_CC_FLAGS", "-Os")
        key_os = native._disk_key("sig", "cc-id")
        assert key_o2 != key_os

    def test_disk_key_separates_modes(self):
        native.set_simd_mode(True)
        key_simd = native._disk_key("sig", "cc-id")
        native.set_simd_mode(False)
        key_scalar = native._disk_key("sig", "cc-id")
        assert ":simd:" in key_simd
        assert ":scalar:" in key_scalar
        assert key_simd != key_scalar

    @needs_cc
    def test_set_simd_mode_drops_kernel_cache(self):
        program = simdize(build_fig1(trip=50), 16, SimdOptions()).program
        native.set_simd_mode(False)
        native.get_native_kernel(program)
        assert len(native._NATIVE_CACHE) > 0
        native.set_simd_mode(True)
        assert len(native._NATIVE_CACHE) == 0
