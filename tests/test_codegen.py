"""Tests for loop-level code generation: bounds, sections, guards."""

import pytest

from repro.codegen import GenOptions, generate_program
from repro.errors import CodegenError
from repro.ir import LoopBuilder, figure1_loop
from repro.reorg import apply_policy, build_loop_graph
from repro.simdize import SimdOptions, simdize
from repro.vir import SConst, VSpliceE
from repro.vir.vstmt import VStoreS

from conftest import check_loop


def program_for(loop, policy="zero", sp=False, scheme="auto", V=16):
    graph = apply_policy(build_loop_graph(loop, V), policy)
    return generate_program(graph, GenOptions(software_pipeline=sp, bounds_scheme=scheme))


class TestSingleStatementBounds:
    """Equations 8-11 of the paper on the Figure 1 loop (P=12, D=4)."""

    def test_lb_is_peeled_iterations(self):
        program = program_for(figure1_loop(trip=100))
        # LB = (V - ProSplice)/D = (16-12)/4 = 1
        assert program.steady.lb == SConst(1)
        assert program.steady_residue == 1

    def test_ub_subtracts_episplice(self):
        program = program_for(figure1_loop(trip=100))
        # EpiSplice = (12 + 100*4) mod 16 = 12 -> UB = 100 - 3 = 97
        assert program.steady.ub == SConst(97)

    def test_no_epilogue_when_stream_ends_aligned(self):
        # trip chosen so (P + trip*D) % V == 0: 12 + t*4 ≡ 0 (16) -> t ≡ 1 (mod 4)
        program = program_for(figure1_loop(trip=101, length=128))
        assert program.epilogue == []
        assert program.steady.ub == SConst(101)

    def test_aligned_store_lb_is_blocking_factor(self):
        lb = LoopBuilder(trip=64)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        lb.assign(a[0], b[1])
        program = program_for(lb.build())
        assert program.steady.lb == SConst(4)
        assert program.steady_residue == 0

    def test_prologue_splices_at_store_alignment(self):
        program = program_for(figure1_loop(trip=100))
        [store] = program.prologue[0].stmts
        assert isinstance(store, VStoreS)
        assert isinstance(store.src, VSpliceE)
        assert store.src.point == 12
        assert program.prologue[0].i_expr == SConst(0)

    def test_epilogue_splices_at_episplice(self):
        program = program_for(figure1_loop(trip=100))
        [sec] = program.epilogue
        [store] = sec.stmts
        assert isinstance(store.src, VSpliceE)
        assert store.src.point == 12
        assert sec.i_expr == SConst(97)


class TestGeneralBounds:
    """Equations 12/15/16 for multi-statement and runtime cases."""

    def _two_statement_loop(self, trip=64):
        lb = LoopBuilder(trip=trip)
        a = lb.array("a", "int32", 96)
        b = lb.array("b", "int32", 96)
        c = lb.array("c", "int32", 96)
        d = lb.array("d", "int32", 96)
        lb.assign(a[1], b[2] + 1)
        lb.assign(c[3], d[0] + 2)
        return lb.build()

    def test_lb_is_blocking_factor(self):
        program = program_for(self._two_statement_loop())
        assert program.steady.lb == SConst(4)

    def test_ub_is_trip_minus_b_plus_1(self):
        program = program_for(self._two_statement_loop(trip=64))
        assert program.steady.ub == SConst(64 - 4 + 1)

    def test_per_statement_prologue_and_epilogue(self):
        program = program_for(self._two_statement_loop())
        labels = [sec.label for sec in program.prologue]
        assert labels == ["prologue_s0", "prologue_s1"]
        # trip 64 ≡ 0 (mod 4): EpiLeftOver_k = P_k; statement 0 has
        # P=4 (partial only), statement 1 has P=12 (partial only).
        epilogue_labels = [sec.label for sec in program.epilogue]
        assert epilogue_labels == ["epilogue_part_s0", "epilogue_part_s1"]

    def test_epileftover_above_v_adds_full_store(self):
        # P=12, trip ≡ 2 (mod 4): EpiLeftOver = 12 + 2*4 = 20 >= 16
        program = program_for(figure1_loop(trip=102, length=136), scheme="general")
        labels = [sec.label for sec in program.epilogue]
        assert labels == ["epilogue_full_s0", "epilogue_part_s0"]
        full, part = program.epilogue
        assert full.cond is None  # compile-time decided
        assert isinstance(part.stmts[0].src, VSpliceE)
        assert part.stmts[0].src.point == 4  # 20 mod 16

    def test_single_statement_can_force_general_scheme(self):
        loop = figure1_loop(trip=100)
        single = program_for(loop, scheme="single")
        general = program_for(loop, scheme="general")
        assert single.steady.lb == SConst(1)
        assert general.steady.lb == SConst(4)
        # both must execute correctly
        for scheme in ("single", "general"):
            check_loop(loop, SimdOptions(bounds_scheme=scheme))

    def test_single_scheme_rejected_for_multi_statement(self):
        graph = apply_policy(build_loop_graph(self._two_statement_loop(), 16), "zero")
        with pytest.raises(CodegenError, match="single-statement"):
            generate_program(graph, GenOptions(bounds_scheme="single"))


class TestGuards:
    def test_small_compile_time_trip_always_falls_back(self):
        lb = LoopBuilder(trip=8)
        a = lb.array("a", "int32", 32)
        b = lb.array("b", "int32", 32)
        lb.assign(a[1], b[2])
        program = program_for(lb.build())
        assert program.steady is None
        assert program.guard_min_trip == 8

    def test_runtime_trip_guard_is_3b(self):
        lb = LoopBuilder(trip="n")
        a = lb.array("a", "int32", 256)
        b = lb.array("b", "int32", 256)
        lb.assign(a[1], b[2])
        program = program_for(lb.build())
        assert program.guard_min_trip == 12
        assert program.steady is not None

    def test_compile_time_trip_has_no_guard(self):
        program = program_for(figure1_loop(trip=100))
        assert program.guard_min_trip is None


class TestProgramIntrospection:
    def test_pointer_count_counts_distinct_arrays(self):
        program = program_for(figure1_loop(trip=100))
        assert program.pointer_count() == 3

    def test_static_shift_count_matches_policy(self):
        result = simdize(figure1_loop(), options=SimdOptions(policy="zero", reuse="none", cse=False, memnorm=False))
        # 3 stream shifts, one vshiftpair each in the steady body; the
        # prologue/epilogue re-instantiate them.
        assert result.program.static_shift_count() >= 3

    def test_b_and_d_properties(self):
        program = program_for(figure1_loop(trip=100))
        assert program.D == 4
        assert program.B == 4
