#!/usr/bin/env python
"""Load harness for the ``repro serve`` HTTP tier (``BENCH_interp.json``).

Drives a server — self-hosted in-process by default, or an already
running one via ``--port`` — with a raw asyncio HTTP client and
records the serving-layer numbers the PR 10 acceptance bars ask for:

* **cold vs warm** — /verify latency on first sight of a program
  (compile + simdize + kernel build) vs repeat requests against the
  warm memo/kernel/disk caches; p50/p99 and the cold/warm ratio.
* **throughput vs concurrency** — warm /verify requests at 1, 4 and
  16 concurrent connections; requests per second and p99.
* **coalescing** — N identical concurrent requests must all succeed
  and collapse onto a shared flight (observable in /stats).
* **under faults** — the same warm load with ``serve:reject`` /
  ``serve:disconnect`` probabilistically armed and with
  ``compile:raise`` degrading the native tier: the error budget is
  explicit (shed requests answer 429, disconnects are visible client
  errors, everything served answers 200) and the server must stay up.
  Fault scenarios need the in-process server (they arm ``REPRO_FAULT``
  in this very process) and are skipped with ``--port``.

``--smoke`` runs a seconds-long version of the unfaulted scenarios
and skips the results write — CI uses it as a liveness + latency
sanity gate against the server it started.  The full run read-modify-
writes the ``serve`` section of ``BENCH_interp.json`` (other sections
are owned by bench_speed.py and left untouched) and appends a text
report under ``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

SOURCES = [
    ("int a[512]; int b[512]; int c[512]; "
     f"for (i = 0; i < {trip}; i++) {{ a[i] = b[i+1] + c[i+{off}]; }}")
    for trip, off in ((150, 2), (200, 3), (250, 1), (300, 2))
]


async def fetch(port, method, path, body=None, headers=None):
    """One request on a fresh connection; (status|None, body, seconds)."""
    started = time.perf_counter()
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    except OSError:
        return None, b"", time.perf_counter() - started
    payload = b"" if body is None else json.dumps(body).encode()
    head = (f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
            f"Content-Length: {len(payload)}\r\n")
    for name, value in (headers or {}).items():
        head += f"{name}: {value}\r\n"
    try:
        writer.write(head.encode() + b"\r\n" + payload)
        await writer.drain()
        data = await reader.read()
    except (ConnectionError, OSError):
        data = b""
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    elapsed = time.perf_counter() - started
    head_bytes, _, rest = data.partition(b"\r\n\r\n")
    if not head_bytes:
        return None, b"", elapsed
    return int(head_bytes.split()[1]), rest, elapsed


async def run_load(port, requests, concurrency, payload_of):
    """``requests`` POST /verify calls at fixed concurrency.

    Returns (status histogram, sorted latencies, wall seconds).
    """
    statuses: dict = {}
    latencies: list[float] = []
    queue: asyncio.Queue = asyncio.Queue()
    for i in range(requests):
        queue.put_nowait(i)

    async def worker():
        while True:
            try:
                i = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            status, _, seconds = await fetch(port, "POST", "/verify",
                                             payload_of(i))
            key = status if status is not None else "dropped"
            statuses[key] = statuses.get(key, 0) + 1
            latencies.append(seconds)

    started = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(concurrency)])
    wall = time.perf_counter() - started
    return statuses, sorted(latencies), wall


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


def summarize(name, statuses, latencies, wall):
    total = sum(statuses.values())
    line = (f"{name}: {total} requests in {wall:.2f}s "
            f"({total / wall:.1f} rps)  "
            f"p50 {percentile(latencies, 0.50) * 1e3:.1f}ms  "
            f"p99 {percentile(latencies, 0.99) * 1e3:.1f}ms  "
            f"statuses {dict(sorted(statuses.items(), key=str))}")
    print(line, flush=True)
    return line


class Harness:
    """A server to aim at: external (--port) or in-process."""

    def __init__(self, port=None):
        self.external = port is not None
        self.port = port
        self._server = None
        self._app = None

    async def __aenter__(self):
        if not self.external:
            from repro.serve.app import ServeApp, ServeConfig

            self._app = ServeApp(ServeConfig(
                port=0, workers=4, max_inflight=8, max_queue=64,
                deadline=120.0, compile_budget=60.0))
            self._server = await asyncio.start_server(
                self._app.handle_connection, "127.0.0.1", 0)
            self.port = self._server.sockets[0].getsockname()[1]
        status, _, _ = await fetch(self.port, "GET", "/healthz")
        if status != 200:
            raise SystemExit(f"server on port {self.port} is not healthy "
                             f"(healthz -> {status})")
        return self

    async def __aexit__(self, *exc):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._app.close()

    async def stats(self):
        _, body, _ = await fetch(self.port, "GET", "/stats")
        return json.loads(body)


def _arm(spec):
    if spec:
        os.environ["REPRO_FAULT"] = spec
    else:
        os.environ.pop("REPRO_FAULT", None)
    from repro import faults

    faults.reload()


async def scenario_cold_warm(h, repeats):
    section = {}
    cold_lat = []
    for i, src in enumerate(SOURCES):
        status, _, seconds = await fetch(
            h.port, "POST", "/verify", {"source": src, "seed": i})
        assert status == 200, f"cold verify -> {status}"
        cold_lat.append(seconds)
    statuses, warm_lat, wall = await run_load(
        h.port, repeats * len(SOURCES), 4,
        lambda i: {"source": SOURCES[i % len(SOURCES)],
                   "seed": i % len(SOURCES)})
    assert set(statuses) == {200}, f"warm load statuses {statuses}"
    cold_p50 = statistics.median(cold_lat)
    warm_p50 = percentile(warm_lat, 0.50)
    section["cold_p50_ms"] = round(cold_p50 * 1e3, 2)
    section["warm_p50_ms"] = round(warm_p50 * 1e3, 2)
    section["warm_p99_ms"] = round(percentile(warm_lat, 0.99) * 1e3, 2)
    section["cold_over_warm"] = round(cold_p50 / max(warm_p50, 1e-9), 1)
    section["warm_rps"] = round(len(warm_lat) / wall, 1)
    print(f"cold/warm: cold p50 {section['cold_p50_ms']}ms, "
          f"warm p50 {section['warm_p50_ms']}ms "
          f"({section['cold_over_warm']}x), "
          f"warm {section['warm_rps']} rps", flush=True)
    return section


async def scenario_concurrency(h, requests):
    payload = {"source": SOURCES[0], "seed": 0}
    section = {}
    for concurrency in (1, 4, 16):
        statuses, latencies, wall = await run_load(
            h.port, requests, concurrency, lambda i: payload)
        assert set(statuses) == {200}, statuses
        summarize(f"concurrency {concurrency}", statuses, latencies, wall)
        section[f"c{concurrency}"] = {
            "rps": round(len(latencies) / wall, 1),
            "p50_ms": round(percentile(latencies, 0.50) * 1e3, 2),
            "p99_ms": round(percentile(latencies, 0.99) * 1e3, 2),
        }
    return section


async def scenario_coalescing(h, twins):
    before = (await h.stats())["singleflight"]
    results = await asyncio.gather(*[
        fetch(h.port, "POST", "/verify", {"source": SOURCES[1], "seed": 77})
        for _ in range(twins)])
    assert all(status == 200 for status, _, _ in results)
    assert len({body for _, body, _ in results}) == 1
    after = (await h.stats())["singleflight"]
    coalesced = after["coalesced"] - before["coalesced"]
    print(f"coalescing: {twins} identical concurrent requests, "
          f"{coalesced} coalesced onto shared flights", flush=True)
    return {"twins": twins, "coalesced": coalesced}


async def scenario_faults(h, requests):
    """Warm load with the serve/compile fault surface armed."""
    section = {}
    payload_of = (lambda i: {"source": SOURCES[i % len(SOURCES)],
                             "seed": i % len(SOURCES)})
    for name, spec, ok_statuses in (
            ("reject_30pct", "serve:reject:0.3:11", {200, 429}),
            ("disconnect_30pct", "serve:disconnect:0.3:12",
             {200, "dropped"}),
            ("compile_raise_native", "compile:raise", {200})):
        _arm(spec)
        try:
            if name == "compile_raise_native":
                def payload_of(i, _base=payload_of):  # noqa: E306
                    doc = dict(_base(i))
                    doc["backend"] = "native"
                    return doc
            statuses, latencies, wall = await run_load(
                h.port, requests, 4, payload_of)
        finally:
            _arm("")
        assert set(statuses) <= ok_statuses, (name, statuses)
        assert statuses.get(200, 0) > 0, (name, statuses)
        line = summarize(f"fault {name}", statuses, latencies, wall)
        section[name] = {
            "statuses": {str(k): v for k, v in statuses.items()},
            "p99_ms": round(percentile(latencies, 0.99) * 1e3, 2),
        }
        # The server itself must have stayed healthy throughout.
        status, _, _ = await fetch(h.port, "GET", "/healthz")
        assert status == 200, f"unhealthy after {name}: {status}"
        del line
    stats = await h.stats()
    section["breaker_trips"] = stats["breaker"]["trips"]
    section["degraded_native"] = stats["counters"].get("degraded_native", 0)
    assert section["degraded_native"] > 0  # compile:raise really degraded
    return section


async def run(args) -> dict:
    async with Harness(args.port) as h:
        repeats = 2 if args.smoke else 25
        requests = 8 if args.smoke else 200
        sections = {
            "cold_warm": await scenario_cold_warm(h, repeats),
            "throughput": await scenario_concurrency(h, requests),
            "coalescing": await scenario_coalescing(h, 4 if args.smoke
                                                    else 16),
        }
        if h.external:
            print("faults: skipped (external server; REPRO_FAULT is "
                  "per-process)", flush=True)
        else:
            sections["faults"] = await scenario_faults(
                h, 16 if args.smoke else 120)
        stats = await h.stats()
        sections["server_counters"] = {
            "requests_total": stats["counters"]["requests_total"],
            "rejected_429": stats["counters"].get("rejected_429", 0),
            "batches": stats["counters"].get("batches", 0),
            "unhandled_errors": stats["counters"].get("unhandled_errors", 0),
        }
        assert sections["server_counters"]["unhandled_errors"] == 0
        return sections


def write_results(sections) -> None:
    from repro.reporting import atomic_write_text

    bench_path = ROOT / "BENCH_interp.json"
    try:
        merged = json.loads(bench_path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged["serve"] = sections
    atomic_write_text(bench_path, json.dumps(merged, indent=2) + "\n")
    results = ROOT / "benchmarks" / "results"
    results.mkdir(exist_ok=True)
    atomic_write_text(results / "serve.txt",
                      json.dumps(sections, indent=2, sort_keys=True) + "\n")
    print(f"wrote serve section to {bench_path}", flush=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-long CI gate; no results write")
    parser.add_argument("--port", type=int, default=None,
                        help="aim at an already-running server instead of "
                             "self-hosting one in-process")
    args = parser.parse_args(argv)
    if args.port is None:
        os.environ.setdefault("REPRO_CACHE_DIR",
                              str(ROOT / ".bench-serve-cache"))
    sections = asyncio.run(run(args))
    if not args.smoke:
        write_results(sections)
    print("bench_serve: OK", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
