"""Regenerate the paper's Section 5.4 coverage analysis.

Paper reference: "More than a thousand loops were generated with
varying (l, s, n, b, r) parameters … Our compiler simdized all the
loops.  The generated binaries were simulated on a cycle-accurate
simulator, and the results were verified."

The full configuration (REPRO_FULL=1) runs 1000 loops with trip counts
in [997, 1000], up to 8 loads per statement and 4 statements, random
bias/reuse, random policies and optimization combinations; the scaled
configuration runs fewer loops with shorter trips.
"""

from repro.bench import coverage_sweep

from conftest import COVERAGE_COUNT, FULL, record


def test_coverage(benchmark):
    trip_range = (997, 1000) if FULL else (61, 90)
    result = benchmark.pedantic(
        coverage_sweep,
        kwargs=dict(count=COVERAGE_COUNT, seed=42, trip_range=trip_range),
        rounds=1, iterations=1,
    )
    record("coverage", result.format())
    assert result.all_passed, result.format()
    assert result.simdized == COVERAGE_COUNT
