"""Wall-clock comparison of the bytes/numpy/jit/native engines
(``BENCH_interp.json``).

Measurements over a fixed, seeded Figure-11 sweep:

* **engine time** — vector ``backend.run()`` alone on pre-simdized
  programs and pre-filled memories, bytes vs numpy.  This isolates the
  vector interpreter, where the batched backend collapses the steady
  loop into O(statements) NumPy calls; the acceptance bar is a >= 10x
  speedup at paper-scale trip counts.
* **jit time** — the same repeated-trip workload on the compile-once
  jit engine (kernels warmed, so this times pure re-execution, the
  sweep steady state); bar: >= 2x over the numpy engine, which
  re-plans and tree-walks the splice sections on every run.
* **compile path** — cold vs warm jit codegen against a shared disk
  cache: the cold pass lowers every program, the warm pass (memory
  cache cleared) must load every kernel spec from disk.
* **native tier** — the same workload with the steady loop compiled
  to machine code via the C emitter, both whole-run and
  steady-loop-only vs jit; bar: >= 5x on the steady loop (10x is the
  recorded target) and a 100% warm disk hit rate for the shared
  objects.  Skipped (recorded, not failed) on hosts without a C
  compiler.
* **compile pipeline** — cold kernel acquisition one-cc-per-signature
  vs one batched multi-kernel translation unit
  (``compilequeue.precompile``), plus the async queue's foreground
  cost: time to the first sweep results on the jit delegate while the
  compiler runs behind them, vs the same pass on jit.  Bars: <= 6 cc
  invocations for the full signature set, >= 1.25x batched cold
  speedup, async foreground within 1.5x of jit when a spare core can
  absorb the compiler (3x on single-CPU hosts, where the foreground
  timeshares with cc) and always ahead of the blocking batch.
* **scalar-engine time** — the scalar-reference engines on the same
  loops, bytes (per-iteration interpreter) vs numpy (whole-array
  shifted-window evaluation); bar: >= 10x.
* **verify-path time** — the end-to-end sweep (synthesize + simdize +
  scalar reference + vector run + byte-for-byte verify) with *both*
  engines forced to bytes vs both forced to numpy, at the same
  paper-scale trip; bar: >= 5x.  This is the number that used to be
  scalar-dominated before the batched scalar engine existed.
* **sweep time** — ``measure_many`` serial vs multi-process with
  chunked task submission.  Recorded for information only: on the
  single-core CI host this shows honest pool overhead, not a gain.
* **batched sweep** — ``--sweep-mode batched`` (group configs by
  program signature, run each class as one config-batched jit call)
  vs the per-config path, serial and at 2 workers, plus the
  signature-class size histogram.  The emitted Measurements are
  asserted identical between modes; the bar is a >= 1.25x wall-clock
  win on both the serial and the equal-worker comparison.
* **native simd** — the vector-extension emitter vs the scalar-lane
  emitter on identical pre-marshalled steady-kernel calls (the
  marshalling around one ctypes crossing is mode-invariant and would
  drown the kernel body at engine level), plus whole-run and
  batch-driver views and a measured aligned-vs-shifted kernel pair.
  Bars: >= 1.3x on the direct steady path and a >= 1.05x measured
  realignment overhead — the paper's aligned-access claim on real
  hardware.  Skipped when cc fails the vector-extension probe.
* **native batch** — the C batch driver (one ctypes crossing per
  signature class, row loop in C) vs config-batched jit at the engine
  ``run_batch`` level on the fig11 signature classes, plus a
  per-config native axis and the honest end-to-end batched-sweep
  split, serial and at 2 workers.  Bars: >= 1.5x over jit
  ``run_batch``, >= 90% of signature classes executed by the C
  driver, and measurements byte-identical across the two tiers.

Results land in ``BENCH_interp.json`` at the repo root and in
``benchmarks/results/speed.*.txt``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import random
import tempfile
import time
from collections import Counter
from dataclasses import dataclass

import pytest

from repro.bench import SweepConfig, figure_configs, measure_many
from repro.bench.runner import _cached_simdize, _program_class_key
from repro.bench.synth import synthesize
from repro.cache import reset_cache_dir, set_cache_dir
from repro.machine import get_backend, get_scalar_backend, numpy_available
from repro.machine.scalar import RunBindings
from repro.simdize.verify import fill_random, make_space

from conftest import FULL, record

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Fixed workload: every Figure-11 scheme bar, a couple of loops each,
#: at a paper-scale trip count so the steady loop dominates.
SPEED_COUNT = 3 if FULL else 2
SPEED_TRIP = 2039
SWEEP_TRIP = 257
ROUNDS = 3


@dataclass
class _Workload:
    label: str
    program: object
    space: object
    mem: object
    bindings: RunBindings


def _build_workloads() -> list[_Workload]:
    workloads = []
    for label, config in figure_configs(False, count=SPEED_COUNT,
                                        trip=SPEED_TRIP):
        syn = synthesize(config.params, config.seed, config.V)
        result = _cached_simdize(syn.loop, config.V, config.options)
        rng = random.Random(config.seed ^ 0x5EED)
        space = make_space(syn.loop, config.V, rng, syn.base_residues)
        mem = space.make_memory()
        fill_random(space, mem, rng)
        trip = SPEED_TRIP if syn.loop.runtime_upper else None
        workloads.append(_Workload(label, result.program, space, mem,
                                   RunBindings(trip=trip)))
    return workloads


def _time_engine(engine, workloads: list[_Workload]) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        mems = [w.mem.clone() for w in workloads]
        start = time.perf_counter()
        for w, mem in zip(workloads, mems):
            engine.run(w.program, w.space, mem, w.bindings)
        best = min(best, time.perf_counter() - start)
    return best


def _time_scalar_engine(engine, workloads: list[_Workload]) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        mems = [w.mem.clone() for w in workloads]
        start = time.perf_counter()
        for w, mem in zip(workloads, mems):
            engine.run(w.program.source, w.space, mem, w.bindings)
        best = min(best, time.perf_counter() - start)
    return best


def _time_sweep(configs: list[SweepConfig], jobs: int,
                backend: str = "auto", scalar_backend: str = "auto",
                sweep_mode: str = "periter", rounds: int = 1) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        measure_many(configs, jobs=jobs, backend=backend,
                     scalar_backend=scalar_backend, sweep_mode=sweep_mode)
        best = min(best, time.perf_counter() - start)
    return best


def test_backend_speed():
    pytest.importorskip("numpy")
    assert numpy_available()

    workloads = _build_workloads()
    bytes_engine = get_backend("bytes")
    numpy_engine = get_backend("numpy")

    # Sanity: both engines produce identical memory on one workload.
    probe = workloads[0]
    mem_b, mem_n = probe.mem.clone(), probe.mem.clone()
    bytes_engine.run(probe.program, probe.space, mem_b, probe.bindings)
    numpy_engine.run(probe.program, probe.space, mem_n, probe.bindings)
    assert mem_b.snapshot() == mem_n.snapshot()

    bytes_s = _time_engine(bytes_engine, workloads)
    numpy_s = _time_engine(numpy_engine, workloads)
    speedup = bytes_s / numpy_s

    # The compile-once jit engine on the same repeated-trip workload.
    # One warm pass compiles + caches every kernel; the timed rounds
    # then measure the steady state a sweep actually runs in.  Cold
    # codegen happens against a throwaway shared disk cache, and a
    # second cold-memory pass measures pure disk-spec loads.
    from repro.machine import jit

    with tempfile.TemporaryDirectory() as cache_root:
        set_cache_dir(cache_root)
        try:
            jit.clear_memory_cache()
            stats0 = dict(jit.STATS)
            start = time.perf_counter()
            for w in workloads:
                get_backend("jit").run(w.program, w.space, w.mem.clone(),
                                       w.bindings)
            jit_cold_s = time.perf_counter() - start
            stats1 = dict(jit.STATS)

            jit_s = _time_engine(get_backend("jit"), workloads)
            jit_speedup = numpy_s / jit_s

            jit.clear_memory_cache()
            start = time.perf_counter()
            for w in workloads:
                get_backend("jit").run(w.program, w.space, w.mem.clone(),
                                       w.bindings)
            jit_warm_s = time.perf_counter() - start
            stats2 = dict(jit.STATS)
        finally:
            reset_cache_dir()
            jit.clear_memory_cache()

    cold_codegens = stats1["codegens"] - stats0["codegens"]
    cold_compile_s = stats1["compile_s"] - stats0["compile_s"]
    warm_lookups = (stats2["disk_hits"] + stats2["disk_misses"]
                    - stats1["disk_hits"] - stats1["disk_misses"])
    warm_disk_hits = stats2["disk_hits"] - stats1["disk_hits"]
    warm_compile_s = stats2["compile_s"] - stats1["compile_s"]
    disk_hit_rate = warm_disk_hits / warm_lookups if warm_lookups else 0.0

    # The native tier: the same repeated-trip workload with the steady
    # loop compiled to machine code.  Two views are recorded — the
    # steady loop alone (the component the tier replaces; this carries
    # the acceptance bar) and the whole run (the net win after the
    # prologue/epilogue/verify work both tiers share).  Cold codegen
    # runs against a throwaway shared disk cache; a cleared-memory
    # second pass must then hit the disk for every shared object.
    from repro.machine import native as native_mod
    from repro.machine.jit import JitBackend
    from repro.machine.native import NativeBackend

    native_section: dict
    if native_mod._compiler_identity()[0] is None:
        native_section = {"skipped": "no C compiler on host"}
        native_steady_speedup = None
        native_hit_rate = None
    else:
        steady_acc = [0.0]
        real_jit_steady = JitBackend.__dict__["_steady"]
        real_native_steady = NativeBackend.__dict__["_steady"]

        def _timed(inner):
            def hook(self, env, steady, kernel):
                start = time.perf_counter()
                try:
                    return inner(self, env, steady, kernel)
                finally:
                    steady_acc[0] += time.perf_counter() - start
            return hook

        def _steady_time(engine) -> float:
            best = float("inf")
            for _ in range(ROUNDS):
                mems = [w.mem.clone() for w in workloads]
                steady_acc[0] = 0.0
                for w, mem in zip(workloads, mems):
                    engine.run(w.program, w.space, mem, w.bindings)
                best = min(best, steady_acc[0])
            return best

        with tempfile.TemporaryDirectory() as cache_root:
            set_cache_dir(cache_root)
            JitBackend._steady = _timed(real_jit_steady)
            NativeBackend._steady = _timed(real_native_steady)
            try:
                jit.clear_memory_cache()
                native_mod.clear_memory_cache()
                nstats0 = dict(native_mod.STATS)
                start = time.perf_counter()
                for w in workloads:
                    get_backend("native").run(w.program, w.space,
                                              w.mem.clone(), w.bindings)
                native_cold_s = time.perf_counter() - start
                nstats1 = dict(native_mod.STATS)
                for w in workloads:  # warm the jit kernels too
                    get_backend("jit").run(w.program, w.space,
                                           w.mem.clone(), w.bindings)

                native_s = _time_engine(get_backend("native"), workloads)
                jit_steady_s = _steady_time(get_backend("jit"))
                # The steady-only view needs the classic per-piece run:
                # the whole-run driver executes sections + steady as one
                # C call and never enters the _steady hook.
                real_native_finish = NativeBackend.__dict__["_finish_env"]
                NativeBackend._finish_env = JitBackend.__dict__["_finish_env"]
                try:
                    native_steady_s = _steady_time(get_backend("native"))
                finally:
                    NativeBackend._finish_env = real_native_finish

                native_mod.clear_memory_cache()
                start = time.perf_counter()
                for w in workloads:
                    get_backend("native").run(w.program, w.space,
                                              w.mem.clone(), w.bindings)
                native_warm_s = time.perf_counter() - start
                nstats2 = dict(native_mod.STATS)
            finally:
                JitBackend._steady = real_jit_steady
                NativeBackend._steady = real_native_steady
                reset_cache_dir()
                jit.clear_memory_cache()
                native_mod.clear_memory_cache()

        native_codegens = nstats1["codegens"] - nstats0["codegens"]
        native_cc_s = nstats1["cc_s"] - nstats0["cc_s"]
        native_lookups = (nstats2["disk_hits"] + nstats2["disk_misses"]
                          - nstats1["disk_hits"] - nstats1["disk_misses"])
        native_disk_hits = nstats2["disk_hits"] - nstats1["disk_hits"]
        native_hit_rate = (native_disk_hits / native_lookups
                           if native_lookups else 0.0)
        native_speedup = jit_s / native_s
        native_steady_speedup = jit_steady_s / native_steady_s
        native_section = {
            "jit_s": round(jit_s, 4),
            "native_s": round(native_s, 4),
            "speedup_vs_jit": round(native_speedup, 2),
            "jit_steady_s": round(jit_steady_s, 4),
            "native_steady_s": round(native_steady_s, 4),
            "steady_speedup": round(native_steady_speedup, 2),
            "kernels_compiled": native_codegens,
            "cc_s": round(native_cc_s, 4),
            "cold_s": round(native_cold_s, 4),
            "warm_from_disk_s": round(native_warm_s, 4),
            "warm_disk_lookups": native_lookups,
            "warm_disk_hits": native_disk_hits,
            "disk_hit_rate": round(native_hit_rate, 2),
        }

    # The batched, asynchronous compile pipeline on the same signature
    # set: cold acquisition one-cc-per-kernel (the path CI forces with
    # REPRO_NATIVE_PRECOMPILE=0) vs one batched precompile, then the
    # async queue's foreground cost — time to the first sweep results
    # on the jit delegate while cc runs behind them — against the same
    # first pass on the jit engine.
    pipeline_section: dict
    if "skipped" in native_section:
        pipeline_section = {"skipped": native_section["skipped"]}
        pipeline_invocations = None
        pipeline_cold_speedup = None
        async_ratio = None
    else:
        from repro.machine import compilequeue

        unique = []
        seen_sigs = set()
        for w in workloads:
            sig = jit._cached_signature(w.program)
            if sig not in seen_sigs:
                seen_sigs.add(sig)
                unique.append(w)

        def _acquire_all() -> float:
            start = time.perf_counter()
            for w in unique:
                native_mod.get_native_kernel(w.program)
            return time.perf_counter() - start

        with tempfile.TemporaryDirectory() as cache_root:
            set_cache_dir(cache_root)
            try:
                native_mod.clear_memory_cache()
                pstats0 = dict(native_mod.STATS)
                perkernel_cold_s = _acquire_all()
                pstats1 = dict(native_mod.STATS)
            finally:
                reset_cache_dir()
                native_mod.clear_memory_cache()

        with tempfile.TemporaryDirectory() as cache_root:
            set_cache_dir(cache_root)
            try:
                native_mod.clear_memory_cache()
                start = time.perf_counter()
                compilequeue.precompile([w.program for w in unique])
                _acquire_all()   # all memory hits after the batch
                pipeline_cold_s = time.perf_counter() - start
                pstats2 = dict(native_mod.STATS)
            finally:
                reset_cache_dir()
                native_mod.clear_memory_cache()

        with tempfile.TemporaryDirectory() as cache_root:
            set_cache_dir(cache_root)
            try:
                jit.clear_memory_cache()
                native_mod.clear_memory_cache()
                compilequeue.set_async_compile(True)
                astats0 = dict(native_mod.STATS)
                start = time.perf_counter()
                for w in unique:
                    get_backend("native").run(w.program, w.space,
                                              w.mem.clone(), w.bindings)
                async_first_s = time.perf_counter() - start
                compilequeue.drain(timeout=120.0)
                astats1 = dict(native_mod.STATS)
            finally:
                compilequeue.set_async_compile(None)
                reset_cache_dir()
                jit.clear_memory_cache()
                native_mod.clear_memory_cache()

        with tempfile.TemporaryDirectory() as cache_root:
            set_cache_dir(cache_root)
            try:
                jit.clear_memory_cache()
                start = time.perf_counter()
                for w in unique:
                    get_backend("jit").run(w.program, w.space,
                                           w.mem.clone(), w.bindings)
                jit_first_s = time.perf_counter() - start
            finally:
                reset_cache_dir()
                jit.clear_memory_cache()

        perkernel_invocations = (pstats1["cc_invocations"]
                                 - pstats0["cc_invocations"])
        pipeline_invocations = (pstats2["cc_invocations"]
                                - pstats1["cc_invocations"])
        pipeline_cold_speedup = perkernel_cold_s / pipeline_cold_s
        async_ratio = async_first_s / jit_first_s
        pipeline_section = {
            "signatures": len(unique),
            "perkernel_cold_s": round(perkernel_cold_s, 4),
            "perkernel_cc_invocations": perkernel_invocations,
            "pipeline_cold_s": round(pipeline_cold_s, 4),
            "pipeline_cc_invocations": pipeline_invocations,
            "pipeline_tus": pstats2["tus"] - pstats1["tus"],
            "cold_speedup": round(pipeline_cold_speedup, 2),
            "async_first_result_s": round(async_first_s, 4),
            "jit_first_result_s": round(jit_first_s, 4),
            "async_overhead_ratio": round(async_ratio, 2),
            "async_cc_invocations": (astats1["cc_invocations"]
                                     - astats0["cc_invocations"]),
            "async_cc_s": round(astats1["async_cc_s"]
                                - astats0["async_cc_s"], 4),
            "hot_swaps": astats1["hot_swaps"] - astats0["hot_swaps"],
        }

    scalar_bytes_s = _time_scalar_engine(get_scalar_backend("bytes"), workloads)
    scalar_numpy_s = _time_scalar_engine(get_scalar_backend("numpy"), workloads)
    scalar_speedup = scalar_bytes_s / scalar_numpy_s

    # End-to-end verification path at the paper-scale trip: every stage
    # on the bytes oracles vs every stage on the batched numpy engines.
    # The simdize memo is already warm from _build_workloads, so both
    # runs time execution + verification, not lowering.
    verify_configs = [
        c for _, c in figure_configs(False, count=SPEED_COUNT, trip=SPEED_TRIP)
    ]
    verify_bytes_s = _time_sweep(verify_configs, jobs=1,
                                 backend="bytes", scalar_backend="bytes")
    verify_numpy_s = _time_sweep(verify_configs, jobs=1,
                                 backend="numpy", scalar_backend="numpy")
    verify_speedup = verify_bytes_s / verify_numpy_s

    sweep_configs = [
        c for _, c in figure_configs(False, count=SPEED_COUNT, trip=SWEEP_TRIP)
    ]
    # At least 2 so the ProcessPoolExecutor path always runs; on a
    # single-core host this records honest pool overhead, not a gain.
    jobs_n = max(2, min(4, os.cpu_count() or 1))
    sweep_serial_s = _time_sweep(sweep_configs, jobs=1)
    sweep_parallel_s = _time_sweep(sweep_configs, jobs=jobs_n)

    # Structure-batched sweep vs the per-config path, on a larger
    # figure subset so multi-config signature classes actually occur.
    # Everything is warmed first (simdize memo + jit kernels against a
    # throwaway disk cache), the Measurements are asserted identical
    # between modes, and then each path is timed best-of-ROUNDS —
    # serial and at the same worker count — so the comparison is pure
    # wall clock on equal cache state.
    batch_configs = [
        c for _, c in figure_configs(False, count=2 * SPEED_COUNT,
                                     trip=SWEEP_TRIP)
    ]
    class_keys = []
    for config in batch_configs:
        syn = synthesize(config.params, config.seed, config.V)
        result = _cached_simdize(syn.loop, config.V, config.options)
        class_keys.append(_program_class_key(config, result))
    size_histogram = Counter(Counter(class_keys).values())

    with tempfile.TemporaryDirectory() as cache_root:
        set_cache_dir(cache_root)
        try:
            base = measure_many(batch_configs, jobs=1)
            assert measure_many(batch_configs, jobs=1,
                                sweep_mode="batched") == base
            batch_periter_s = _time_sweep(batch_configs, jobs=1,
                                          rounds=ROUNDS)
            batch_serial_s = _time_sweep(batch_configs, jobs=1,
                                         sweep_mode="batched", rounds=ROUNDS)
            batch_periter_jobs_s = _time_sweep(batch_configs, jobs=jobs_n,
                                               rounds=ROUNDS)
            batch_jobs_s = _time_sweep(batch_configs, jobs=jobs_n,
                                       sweep_mode="batched", rounds=ROUNDS)
        finally:
            reset_cache_dir()
            jit.clear_memory_cache()
    batch_speedup = batch_periter_s / batch_serial_s
    batch_jobs_speedup = batch_periter_jobs_s / batch_jobs_s

    # Batched-class native execution: the C batch driver runs a whole
    # signature class behind one ctypes crossing.  Two views: the
    # engine-level run_batch comparison on the fig11 signature classes
    # at a steady-dominated trip (this carries the 1.5x acceptance
    # bar), and the honest end-to-end sweep split, serial and at
    # jobs_n, where mode-invariant per-config costs (scalar reference,
    # verification, memory setup) dilute the engine gap.
    if native_mod._compiler_identity()[0] is None:
        native_batch_section = {"skipped": "no C compiler on host"}
        native_batch_speedup = None
        driver_coverage = None
    else:
        from collections import OrderedDict as _ODict

        from repro.profiling import PhaseProfile

        nb_configs = [
            c for _, c in figure_configs(False, count=2 * SPEED_COUNT,
                                         trip=SPEED_TRIP)
        ]
        nb_classes: "_ODict[object, list]" = _ODict()
        for config in nb_configs:
            syn = synthesize(config.params, config.seed, config.V)
            result = _cached_simdize(syn.loop, config.V, config.options)
            rng = random.Random(config.seed ^ 0x5EED)
            space = make_space(syn.loop, config.V, rng, syn.base_residues)
            mem = space.make_memory()
            fill_random(space, mem, rng)
            bindings = RunBindings(
                trip=syn.params.trip if syn.loop.runtime_upper else None)
            nb_classes.setdefault(
                _program_class_key(config, result), []).append(
                (result.program, space, mem, bindings))

        def _time_run_batch(name: str) -> float:
            engine = get_backend(name)
            best = float("inf")
            for _ in range(ROUNDS):
                groups = [[(p, s, m.clone(), b) for p, s, m, b in group]
                          for group in nb_classes.values()]
                start = time.perf_counter()
                for group in groups:
                    engine.run_batch(group)
                best = min(best, time.perf_counter() - start)
            return best

        def _time_per_run(name: str) -> float:
            engine = get_backend(name)
            best = float("inf")
            for _ in range(ROUNDS):
                groups = [[(p, s, m.clone(), b) for p, s, m, b in group]
                          for group in nb_classes.values()]
                start = time.perf_counter()
                for group in groups:
                    for p, s, m, b in group:
                        engine.run(p, s, m, b)
                best = min(best, time.perf_counter() - start)
            return best

        with tempfile.TemporaryDirectory() as cache_root:
            set_cache_dir(cache_root)
            try:
                compilequeue.precompile(
                    [group[0][0] for group in nb_classes.values()])
                for name in ("jit", "native"):  # warm kernels + .so
                    _time_run_batch(name)
                nb_jit_s = _time_run_batch("jit")
                nb_native_s = _time_run_batch("native")
                nb_periter_s = _time_per_run("native")
                # End-to-end sweep split at the same worker counts as
                # sweep_batched, on equal warm cache state.
                nbe_jit_s = _time_sweep(batch_configs, jobs=1,
                                        backend="jit",
                                        sweep_mode="batched", rounds=ROUNDS)
                nbe_native_s = _time_sweep(batch_configs, jobs=1,
                                           backend="native",
                                           sweep_mode="batched",
                                           rounds=ROUNDS)
                nbe_jit_jobs_s = _time_sweep(batch_configs, jobs=jobs_n,
                                             backend="jit",
                                             sweep_mode="batched",
                                             rounds=ROUNDS)
                nbe_native_jobs_s = _time_sweep(batch_configs, jobs=jobs_n,
                                                backend="native",
                                                sweep_mode="batched",
                                                rounds=ROUNDS)
                # Driver coverage on the fig11 sweep itself: every
                # signature class should execute through the C batch
                # driver (multi-config classes) or the whole-run
                # driver (singletons), not the jit fallback.
                nb_profile = PhaseProfile()
                nb_native_meas = measure_many(batch_configs, jobs=1,
                                              backend="native",
                                              sweep_mode="batched",
                                              profile=nb_profile)
                nb_class_count = nb_profile.counts.get("batch_classes", 0)
                nb_driver_classes = (
                    nb_profile.counts.get("native_batch_calls", 0)
                    + nb_profile.counts.get("native_whole_runs", 0))
                # Byte-identical measurements across tiers: the native
                # batch drivers must reproduce the jit-batched sweep
                # exactly.
                assert nb_native_meas == measure_many(
                    batch_configs, jobs=1, backend="jit",
                    sweep_mode="batched")
            finally:
                reset_cache_dir()
                jit.clear_memory_cache()
                native_mod.clear_memory_cache()
        native_batch_speedup = nb_jit_s / nb_native_s
        driver_coverage = (nb_driver_classes / nb_class_count
                           if nb_class_count else 0.0)
        native_batch_section = {
            "configs": len(nb_configs),
            "signature_classes": len(nb_classes),
            "trip": SPEED_TRIP,
            "jit_batch_s": round(nb_jit_s, 4),
            "native_batch_s": round(nb_native_s, 4),
            "speedup_vs_jit_batch": round(native_batch_speedup, 2),
            "native_periter_s": round(nb_periter_s, 4),
            "speedup_vs_native_periter": round(nb_periter_s / nb_native_s,
                                               2),
            "driver_class_coverage": round(driver_coverage, 3),
            "sweep_trip": SWEEP_TRIP,
            "sweep_jit_serial_s": round(nbe_jit_s, 4),
            "sweep_native_serial_s": round(nbe_native_s, 4),
            "sweep_serial_speedup": round(nbe_jit_s / nbe_native_s, 2),
            "sweep_jobs": jobs_n,
            "sweep_jit_jobs_s": round(nbe_jit_jobs_s, 4),
            "sweep_native_jobs_s": round(nbe_native_jobs_s, 4),
            "sweep_jobs_speedup": round(nbe_jit_jobs_s / nbe_native_jobs_s,
                                        2),
        }

    # True-SIMD emitter: scalar-lane vs vector-extension codegen on the
    # same signature set, plus a measured aligned-vs-shifted kernel
    # pair — the paper's realignment-overhead claim on real hardware.
    # The steady comparison times direct pre-marshalled kernel calls:
    # the Python-side marshalling around one ctypes crossing (~20 us)
    # is mode-invariant and would otherwise drown the ~2 us kernel
    # body, so engine-level timing cannot see the codegen difference.
    # Whole-run and batch-driver views are recorded honestly (diluted)
    # but unasserted.
    if native_mod._compiler_identity()[0] is None:
        native_simd_section = {"skipped": "no C compiler on host"}
        simd_steady_speedup = None
        realignment_overhead = None
    elif not native_mod.simd_supported():
        native_simd_section = {
            "skipped": "compiler fails the vector-extension probe"}
        simd_steady_speedup = None
        realignment_overhead = None
    else:
        import ctypes as _ct

        from repro.lang import compile_source
        from repro.machine import interp as interp_mod
        from repro.machine.alignedbuf import aligned_view, as_ctypes_u8

        def _marshal_direct(program, space, mem, bindings):
            """(cfn, args, keepalive) for one steady call, or None."""
            try:
                kernel = native_mod.get_native_kernel(program)
            except Exception:
                return None
            if kernel.cfn is None:
                return None
            steady = program.steady
            if steady is None or steady.step <= 0:
                return None
            m = mem.clone()
            env = interp_mod._Env(program, space, m, bindings, None)
            try:
                interp_mod._exec_stmts(env, program.preheader, i=None)
                lb = interp_mod._eval_s(env, steady.lb)
                ub = interp_mod._eval_s(env, steady.ub)
                n = len(range(lb, ub, steady.step))
                if n <= 0:
                    return None
                plan = native_mod._plan_for(kernel)
                bases, amounts, cvec = native_mod._steady_tables(
                    kernel, env, lb, n)
            except Exception:
                return None
            vregs = aligned_view(plan.vregs_len)
            cbuf = aligned_view(max(1, len(cvec)))
            cbuf[:len(cvec)] = cvec
            c_mem = (_ct.c_uint8 * m.size).from_buffer(m.raw())
            args = (c_mem, lb, n,
                    (_ct.c_int64 * max(1, len(bases)))(*bases),
                    (_ct.c_int64 * max(1, len(amounts)))(*amounts),
                    as_ctypes_u8(cbuf),
                    (_ct.c_uint8 * plan.vregs_len).from_buffer(vregs))
            return kernel.cfn, args, (m, vregs, cbuf)

        SIMD_REPS = 20

        def _mode_times(simd: bool):
            native_mod.set_simd_mode(simd)
            with tempfile.TemporaryDirectory() as cache_root:
                set_cache_dir(cache_root)
                try:
                    jit.clear_memory_cache()
                    calls = []
                    for w in workloads:
                        made = _marshal_direct(w.program, w.space, w.mem,
                                               w.bindings)
                        if made is not None:
                            calls.append(made)
                    best = float("inf")
                    for _ in range(ROUNDS):
                        start = time.perf_counter()
                        for _ in range(SIMD_REPS):
                            for fn, args, _keep in calls:
                                fn(*args)
                        best = min(best, time.perf_counter() - start)
                    steady_s = best / SIMD_REPS
                    kernels = len(calls)
                    del calls  # release buffer exports
                    whole_s = _time_engine(get_backend("native"), workloads)
                    compilequeue.precompile(
                        [group[0][0] for group in nb_classes.values()])
                    _time_run_batch("native")  # warm the batch kernels
                    batch_s = _time_run_batch("native")
                finally:
                    reset_cache_dir()
                    jit.clear_memory_cache()
                    native_mod.clear_memory_cache()
            return kernels, steady_s, whole_s, batch_s

        # The pair runs at a much longer trip than the sweep workloads:
        # one steady call must spend far longer in the loop body than
        # in the fixed ~1.5 us ctypes dispatch, or the three extra
        # shuffles per iteration disappear into call overhead.
        PAIR_ELEMS = 16384
        PAIR_TRIP = PAIR_ELEMS - 73

        def _pair_steady(src: str, name: str) -> float:
            """Best direct-call steady time for one mini-C kernel."""
            loop = compile_source(src, name=name)
            from repro.simdize import SimdOptions
            result = _cached_simdize(loop, 16,
                                     SimdOptions(policy="zero", reuse="sp"))
            rng = random.Random(0xA119)
            space = make_space(loop, 16, rng)
            mem = space.make_memory()
            fill_random(space, mem, rng)
            made = _marshal_direct(result.program, space, mem,
                                   RunBindings(trip=PAIR_TRIP))
            assert made is not None, f"{name} kernel not lowered natively"
            fn, args, _keep = made
            reps = 20 * SIMD_REPS
            best = float("inf")
            for _ in range(ROUNDS):
                start = time.perf_counter()
                for _ in range(reps):
                    fn(*args)
                best = min(best, time.perf_counter() - start)
            return best / reps

        try:
            scalar_kernels, simd_scalar_steady_s, simd_scalar_whole_s, \
                simd_scalar_batch_s = _mode_times(False)
            simd_kernels, simd_steady_s, simd_whole_s, simd_batch_s = \
                _mode_times(True)

            # Aligned-vs-shifted pair under the vector-ext emitter: the
            # same computation with zero-offset accesses (all streams
            # aligned, no realignment) vs the Figure-1 offsets (three
            # vshiftstream realignments per iteration).
            _PAIR_DECLS = (f"int16_t a[{PAIR_ELEMS}] align 0; "
                           f"int16_t b[{PAIR_ELEMS}] align 0; "
                           f"int16_t c[{PAIR_ELEMS}] align 0; int n;\n")
            native_mod.set_simd_mode(True)
            with tempfile.TemporaryDirectory() as cache_root:
                set_cache_dir(cache_root)
                try:
                    jit.clear_memory_cache()
                    aligned_steady_s = _pair_steady(
                        _PAIR_DECLS +
                        "for (i = 0; i < n; i++) { a[i] = b[i] + c[i]; }",
                        "pair_aligned")
                    shifted_steady_s = _pair_steady(
                        _PAIR_DECLS + "for (i = 0; i < n; i++) "
                        "{ a[i+3] = b[i+1] + c[i+2]; }",
                        "pair_shifted")
                finally:
                    reset_cache_dir()
                    jit.clear_memory_cache()
                    native_mod.clear_memory_cache()
        finally:
            native_mod.set_simd_mode(None)

        simd_steady_speedup = simd_scalar_steady_s / simd_steady_s
        realignment_overhead = shifted_steady_s / aligned_steady_s
        native_simd_section = {
            "emitter": native_mod.emitter_mode(),
            "cc_flags": list(native_mod.compiler_flags()),
            "kernels": simd_kernels,
            "trip": SPEED_TRIP,
            "scalar_lane_steady_s": round(simd_scalar_steady_s, 6),
            "vector_ext_steady_s": round(simd_steady_s, 6),
            "steady_speedup": round(simd_steady_speedup, 2),
            "scalar_lane_whole_s": round(simd_scalar_whole_s, 4),
            "vector_ext_whole_s": round(simd_whole_s, 4),
            "whole_speedup": round(simd_scalar_whole_s / simd_whole_s, 2),
            "scalar_lane_batch_s": round(simd_scalar_batch_s, 4),
            "vector_ext_batch_s": round(simd_batch_s, 4),
            "batch_speedup": round(simd_scalar_batch_s / simd_batch_s, 2),
            "pair_trip": PAIR_TRIP,
            "aligned_steady_s": round(aligned_steady_s, 7),
            "shifted_steady_s": round(shifted_steady_s, 7),
            "realignment_overhead": round(realignment_overhead, 2),
        }

    payload = {
        "benchmark": "figure11-sweep interpreter wall clock",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "programs": len(workloads),
            "loops_per_scheme": SPEED_COUNT,
            "trip": SPEED_TRIP,
            "rounds": ROUNDS,
        },
        "engine_run": {
            "bytes_s": round(bytes_s, 4),
            "numpy_s": round(numpy_s, 4),
            "speedup": round(speedup, 2),
        },
        "jit_run": {
            "numpy_s": round(numpy_s, 4),
            "jit_s": round(jit_s, 4),
            "speedup_vs_numpy": round(jit_speedup, 2),
            "kernels_compiled": cold_codegens,
            "compile_s": round(cold_compile_s, 4),
        },
        "compile_path": {
            "cold_s": round(jit_cold_s, 4),
            "warm_from_disk_s": round(jit_warm_s, 4),
            "warm_compile_s": round(warm_compile_s, 4),
            "disk_lookups": warm_lookups,
            "disk_hits": warm_disk_hits,
            "disk_hit_rate": round(disk_hit_rate, 2),
        },
        "native_run": native_section,
        "native_pipeline": pipeline_section,
        "scalar_run": {
            "bytes_s": round(scalar_bytes_s, 4),
            "numpy_s": round(scalar_numpy_s, 4),
            "speedup": round(scalar_speedup, 2),
        },
        "verify_path": {
            "configs": len(verify_configs),
            "trip": SPEED_TRIP,
            "all_bytes_s": round(verify_bytes_s, 4),
            "all_numpy_s": round(verify_numpy_s, 4),
            "speedup": round(verify_speedup, 2),
        },
        "sweep_end_to_end": {
            "configs": len(sweep_configs),
            "trip": SWEEP_TRIP,
            "jobs": jobs_n,
            "serial_s": round(sweep_serial_s, 4),
            "parallel_s": round(sweep_parallel_s, 4),
            "speedup": round(sweep_serial_s / sweep_parallel_s, 2),
        },
        "sweep_batched": {
            "configs": len(batch_configs),
            "trip": SWEEP_TRIP,
            "signature_classes": len(set(class_keys)),
            # {class size: number of classes of that size} — singleton
            # classes take the per-run fast path, larger ones run as
            # one config-batched kernel call.
            "class_sizes": {
                str(size): count
                for size, count in sorted(size_histogram.items())
            },
            "periter_serial_s": round(batch_periter_s, 4),
            "batched_serial_s": round(batch_serial_s, 4),
            "speedup": round(batch_speedup, 2),
            "jobs": jobs_n,
            "periter_jobs_s": round(batch_periter_jobs_s, 4),
            "batched_jobs_s": round(batch_jobs_s, 4),
            "jobs_speedup": round(batch_jobs_speedup, 2),
        },
        "native_batch": native_batch_section,
        "native_simd": native_simd_section,
    }
    from repro.reporting import atomic_write_text

    # Merge instead of overwrite: sections owned by other harnesses
    # (e.g. "serve" from bench_serve.py) must survive a speed re-run.
    bench_path = ROOT / "BENCH_interp.json"
    try:
        merged = json.loads(bench_path.read_text())
    except (OSError, ValueError):
        merged = {}
    merged.update(payload)
    atomic_write_text(bench_path, json.dumps(merged, indent=2) + "\n")

    lines = [
        f"engine.run over {len(workloads)} programs (trip {SPEED_TRIP}, "
        f"best of {ROUNDS}):",
        f"  bytes  {bytes_s:8.4f} s",
        f"  numpy  {numpy_s:8.4f} s   ({speedup:.1f}x)",
        f"  jit    {jit_s:8.4f} s   ({jit_speedup:.1f}x over numpy, "
        f"{cold_codegens} kernels compiled in {cold_compile_s:.3f} s)",
        f"jit compile path (shared disk cache, memory cache cleared):",
        f"  cold   {jit_cold_s:8.4f} s (codegen)",
        f"  warm   {jit_warm_s:8.4f} s (disk {warm_disk_hits}/{warm_lookups} "
        f"hits, {disk_hit_rate * 100:.0f}%)",
    ]
    if "skipped" in native_section:
        lines.append(f"native tier: skipped ({native_section['skipped']})")
    else:
        lines += [
            f"native tier over {len(workloads)} programs "
            f"(trip {SPEED_TRIP}, best of {ROUNDS}):",
            f"  whole run   jit {jit_s:8.4f} s  native "
            f"{native_s:8.4f} s   ({native_speedup:.1f}x)",
            f"  steady loop jit {jit_steady_s:8.4f} s  native "
            f"{native_steady_s:8.4f} s   ({native_steady_speedup:.1f}x)",
            f"  cc: {native_codegens} kernels in {native_cc_s:.3f} s; "
            f"warm disk {native_disk_hits}/{native_lookups} hits "
            f"({native_hit_rate * 100:.0f}%)",
        ]
    if "skipped" not in pipeline_section:
        lines += [
            f"compile pipeline over {pipeline_section['signatures']} "
            f"signatures:",
            f"  per-kernel cold {perkernel_cold_s:8.4f} s "
            f"({perkernel_invocations} cc invocations)",
            f"  batched cold    {pipeline_cold_s:8.4f} s "
            f"({pipeline_invocations} cc invocation, "
            f"{pipeline_cold_speedup:.1f}x)",
            f"  async first results {async_first_s:8.4f} s vs jit "
            f"{jit_first_s:8.4f} s ({async_ratio:.2f}x foreground; "
            f"{pipeline_section['hot_swaps']} hot swaps)",
        ]
    lines += [
        f"scalar reference over {len(workloads)} loops (trip {SPEED_TRIP}, "
        f"best of {ROUNDS}):",
        f"  bytes  {scalar_bytes_s:8.4f} s",
        f"  numpy  {scalar_numpy_s:8.4f} s   ({scalar_speedup:.1f}x)",
        f"verify path over {len(verify_configs)} configs (trip {SPEED_TRIP}):",
        f"  all-bytes {verify_bytes_s:8.4f} s",
        f"  all-numpy {verify_numpy_s:8.4f} s   ({verify_speedup:.1f}x)",
        f"measure_many over {len(sweep_configs)} configs (trip {SWEEP_TRIP}):",
        f"  jobs=1 {sweep_serial_s:8.4f} s",
        f"  jobs={jobs_n} {sweep_parallel_s:7.4f} s   "
        f"({sweep_serial_s / sweep_parallel_s:.1f}x)",
        f"batched sweep over {len(batch_configs)} configs "
        f"(trip {SWEEP_TRIP}, {len(set(class_keys))} signature classes, "
        f"best of {ROUNDS}):",
        f"  periter jobs=1 {batch_periter_s:8.4f} s",
        f"  batched jobs=1 {batch_serial_s:8.4f} s   ({batch_speedup:.1f}x)",
        f"  periter jobs={jobs_n} {batch_periter_jobs_s:7.4f} s",
        f"  batched jobs={jobs_n} {batch_jobs_s:7.4f} s   "
        f"({batch_jobs_speedup:.1f}x)",
    ]
    if "skipped" in native_batch_section:
        lines.append(
            f"native batch driver: skipped "
            f"({native_batch_section['skipped']})")
    else:
        nb = native_batch_section
        lines += [
            f"native batch driver over {nb['configs']} configs "
            f"({nb['signature_classes']} classes, trip {SPEED_TRIP}, "
            f"best of {ROUNDS}):",
            f"  run_batch   jit {nb_jit_s:8.4f} s  native "
            f"{nb_native_s:8.4f} s   ({native_batch_speedup:.1f}x)",
            f"  per-config native {nb_periter_s:8.4f} s   "
            f"({nb['speedup_vs_native_periter']:.1f}x batched win)",
            f"  driver class coverage {nb_driver_classes}/{nb_class_count} "
            f"({driver_coverage * 100:.0f}%)",
            f"  end-to-end sweep jobs=1: jit {nbe_jit_s:8.4f} s  native "
            f"{nbe_native_s:8.4f} s   ({nb['sweep_serial_speedup']:.2f}x)",
            f"  end-to-end sweep jobs={jobs_n}: jit {nbe_jit_jobs_s:7.4f} s  "
            f"native {nbe_native_jobs_s:7.4f} s   "
            f"({nb['sweep_jobs_speedup']:.2f}x)",
        ]
    if "skipped" in native_simd_section:
        lines.append(
            f"native simd emitter: skipped "
            f"({native_simd_section['skipped']})")
    else:
        ns = native_simd_section
        lines += [
            f"native simd emitter over {ns['kernels']} kernels "
            f"(trip {SPEED_TRIP}, direct steady calls, "
            f"cc {' '.join(ns['cc_flags'])}):",
            f"  steady  scalar-lane {simd_scalar_steady_s * 1e6:8.1f} us  "
            f"vector-ext {simd_steady_s * 1e6:8.1f} us   "
            f"({simd_steady_speedup:.1f}x)",
            f"  whole   scalar-lane {simd_scalar_whole_s:8.4f} s   "
            f"vector-ext {simd_whole_s:8.4f} s   "
            f"({ns['whole_speedup']:.2f}x)",
            f"  batch   scalar-lane {simd_scalar_batch_s:8.4f} s   "
            f"vector-ext {simd_batch_s:8.4f} s   "
            f"({ns['batch_speedup']:.2f}x)",
            f"  realignment pair: aligned {aligned_steady_s * 1e9:7.0f} ns  "
            f"shifted {shifted_steady_s * 1e9:7.0f} ns per call   "
            f"({realignment_overhead:.2f}x overhead)",
        ]
    record("speed", "\n".join(lines))

    # The acceptance bars: batched execution is an order of magnitude
    # faster than the byte oracles at paper-scale trip counts, and the
    # whole verification pipeline gains at least 5x end to end.
    assert speedup >= 10.0, f"numpy backend only {speedup:.1f}x faster"
    assert jit_speedup >= 2.0, (
        f"jit backend only {jit_speedup:.1f}x faster than numpy")
    assert disk_hit_rate == 1.0, (
        f"jit disk cache only hit {warm_disk_hits}/{warm_lookups} warm loads")
    if "skipped" not in native_section:
        # The machine-code steady loop against jit's NumPy-batched one:
        # >= 5x on steady-state repeated runs (the 10x target is
        # recorded, not asserted — the C call's fixed FFI cost bounds
        # the ratio on short trips).  The warm pass must load every
        # shared object from the disk cache.
        assert native_steady_speedup >= 5.0, (
            f"native steady loop only {native_steady_speedup:.1f}x over jit")
        assert native_hit_rate == 1.0, (
            f"native disk cache only hit {native_disk_hits}/{native_lookups} "
            f"warm loads")
        # The compile pipeline: one batched cc invocation replaces one
        # per signature, and the batch is measurably faster than the
        # singleton path even after gcc's fixed per-launch overhead is
        # subtracted.  The async foreground bar is host-aware: with a
        # spare core the first jit-delegated pass runs within 1.5x of
        # pure jit while cc proceeds beside it, but on a single-CPU
        # host the foreground *timeshares the core with the compiler*
        # (measured ~2.2x), so the bar there only excludes pathological
        # serialization — the real claim on such hosts is the absolute
        # one: first results land before the batched compile alone
        # would have returned.
        assert pipeline_invocations <= 6, (
            f"pipeline used {pipeline_invocations} cc invocations "
            f"for {pipeline_section['signatures']} signatures")
        assert pipeline_cold_speedup >= 1.25, (
            f"batched cold compile only {pipeline_cold_speedup:.2f}x "
            f"over per-kernel")
        async_bar = 1.5 if (os.cpu_count() or 1) > 1 else 3.0
        assert async_ratio <= async_bar, (
            f"async first results cost {async_ratio:.2f}x the jit "
            f"first pass (bar {async_bar}x)")
        assert async_first_s < pipeline_cold_s, (
            f"async first results ({async_first_s:.2f} s) arrived "
            f"later than the blocking batched compile "
            f"({pipeline_cold_s:.2f} s)")
    assert scalar_speedup >= 10.0, (
        f"numpy scalar engine only {scalar_speedup:.1f}x faster")
    assert verify_speedup >= 5.0, (
        f"end-to-end verify path only {verify_speedup:.1f}x faster")
    # The batched-sweep win is bounded by the jit-vs-numpy engine gap
    # diluted by the mode-invariant per-config costs (memory setup,
    # scalar reference, scoring) — measured ~2x serial and ~1.7x at 2
    # workers on this workload, so the bar sits at 1.25x with noise
    # margin, on both the serial and the equal-worker comparison.
    assert batch_speedup >= 1.25, (
        f"batched sweep only {batch_speedup:.2f}x over per-config")
    assert batch_jobs_speedup >= 1.25, (
        f"batched sweep at {jobs_n} jobs only {batch_jobs_speedup:.2f}x "
        f"over per-config at {jobs_n} jobs")
    if "skipped" not in native_batch_section:
        # The C batch driver against config-batched jit at the engine
        # level, where the per-class ctypes-crossing collapse is not
        # diluted by mode-invariant sweep costs (measured ~2.7x; the
        # end-to-end split above is recorded honestly but unasserted).
        # Nearly every fig11 signature class must actually go through
        # the C driver — batch or whole-run — not the jit fallback.
        assert native_batch_speedup >= 1.5, (
            f"native run_batch only {native_batch_speedup:.2f}x over "
            f"jit run_batch")
        assert driver_coverage >= 0.9, (
            f"C driver covered only {nb_driver_classes}/{nb_class_count} "
            f"signature classes")
    if "skipped" not in native_simd_section:
        # The vector-extension emitter against the scalar-lane one on
        # identical pre-marshalled steady calls (measured ~3-4x here;
        # the bar leaves margin for weaker autovectorizers making the
        # scalar-lane baseline faster).  The realignment pair pins the
        # paper's core claim on hardware: the same computation with
        # misaligned streams must cost measurably more than its
        # aligned twin under the aligned-SIMD code path.
        assert simd_steady_speedup >= 1.3, (
            f"vector-ext steady path only {simd_steady_speedup:.2f}x "
            f"over scalar-lane")
        assert realignment_overhead >= 1.05, (
            f"shifted kernel only {realignment_overhead:.2f}x the "
            f"aligned one — realignment overhead not measurable")
