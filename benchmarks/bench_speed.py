"""Wall-clock comparison of the two execution backends (``BENCH_interp.json``).

Two measurements over a fixed, seeded Figure-11 sweep:

* **engine time** — ``backend.run()`` alone on pre-simdized programs
  and pre-filled memories, bytes vs numpy.  This isolates the vector
  interpreter, where the batched backend collapses the steady loop
  into O(statements) NumPy calls; the acceptance bar is a >= 10x
  speedup at paper-scale trip counts.
* **sweep time** — the end-to-end ``measure_many`` pipeline
  (synthesize + simdize + scalar reference + vector run + verify)
  serial vs multi-process.  Recorded for information only: the scalar
  reference is pure Python and dominates, which is exactly why the
  ``jobs`` knob exists.

Results land in ``BENCH_interp.json`` at the repo root and in
``benchmarks/results/speed.*.txt``.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import random
import time
from dataclasses import dataclass

import pytest

from repro.bench import SweepConfig, figure_configs, measure_many
from repro.bench.runner import _cached_simdize
from repro.bench.synth import synthesize
from repro.machine import get_backend, numpy_available
from repro.machine.scalar import RunBindings
from repro.simdize.verify import fill_random, make_space

from conftest import FULL, record

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Fixed workload: every Figure-11 scheme bar, a couple of loops each,
#: at a paper-scale trip count so the steady loop dominates.
SPEED_COUNT = 3 if FULL else 2
SPEED_TRIP = 2039
SWEEP_TRIP = 257
ROUNDS = 3


@dataclass
class _Workload:
    label: str
    program: object
    space: object
    mem: object
    bindings: RunBindings


def _build_workloads() -> list[_Workload]:
    workloads = []
    for label, config in figure_configs(False, count=SPEED_COUNT,
                                        trip=SPEED_TRIP):
        syn = synthesize(config.params, config.seed, config.V)
        result = _cached_simdize(syn.loop, config.V, config.options)
        rng = random.Random(config.seed ^ 0x5EED)
        space = make_space(syn.loop, config.V, rng, syn.base_residues)
        mem = space.make_memory()
        fill_random(space, mem, rng)
        trip = SPEED_TRIP if syn.loop.runtime_upper else None
        workloads.append(_Workload(label, result.program, space, mem,
                                   RunBindings(trip=trip)))
    return workloads


def _time_engine(engine, workloads: list[_Workload]) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        mems = [w.mem.clone() for w in workloads]
        start = time.perf_counter()
        for w, mem in zip(workloads, mems):
            engine.run(w.program, w.space, mem, w.bindings)
        best = min(best, time.perf_counter() - start)
    return best


def _time_sweep(configs: list[SweepConfig], jobs: int) -> float:
    start = time.perf_counter()
    measure_many(configs, jobs=jobs)
    return time.perf_counter() - start


def test_backend_speed():
    pytest.importorskip("numpy")
    assert numpy_available()

    workloads = _build_workloads()
    bytes_engine = get_backend("bytes")
    numpy_engine = get_backend("numpy")

    # Sanity: both engines produce identical memory on one workload.
    probe = workloads[0]
    mem_b, mem_n = probe.mem.clone(), probe.mem.clone()
    bytes_engine.run(probe.program, probe.space, mem_b, probe.bindings)
    numpy_engine.run(probe.program, probe.space, mem_n, probe.bindings)
    assert mem_b.snapshot() == mem_n.snapshot()

    bytes_s = _time_engine(bytes_engine, workloads)
    numpy_s = _time_engine(numpy_engine, workloads)
    speedup = bytes_s / numpy_s

    sweep_configs = [
        c for _, c in figure_configs(False, count=SPEED_COUNT, trip=SWEEP_TRIP)
    ]
    # At least 2 so the ProcessPoolExecutor path always runs; on a
    # single-core host this records honest pool overhead, not a gain.
    jobs_n = max(2, min(4, os.cpu_count() or 1))
    sweep_serial_s = _time_sweep(sweep_configs, jobs=1)
    sweep_parallel_s = _time_sweep(sweep_configs, jobs=jobs_n)

    payload = {
        "benchmark": "figure11-sweep interpreter wall clock",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "workload": {
            "programs": len(workloads),
            "loops_per_scheme": SPEED_COUNT,
            "trip": SPEED_TRIP,
            "rounds": ROUNDS,
        },
        "engine_run": {
            "bytes_s": round(bytes_s, 4),
            "numpy_s": round(numpy_s, 4),
            "speedup": round(speedup, 2),
        },
        "sweep_end_to_end": {
            "configs": len(sweep_configs),
            "trip": SWEEP_TRIP,
            "jobs": jobs_n,
            "serial_s": round(sweep_serial_s, 4),
            "parallel_s": round(sweep_parallel_s, 4),
            "speedup": round(sweep_serial_s / sweep_parallel_s, 2),
        },
    }
    (ROOT / "BENCH_interp.json").write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"engine.run over {len(workloads)} programs (trip {SPEED_TRIP}, "
        f"best of {ROUNDS}):",
        f"  bytes  {bytes_s:8.4f} s",
        f"  numpy  {numpy_s:8.4f} s   ({speedup:.1f}x)",
        f"measure_many over {len(sweep_configs)} configs (trip {SWEEP_TRIP}):",
        f"  jobs=1 {sweep_serial_s:8.4f} s",
        f"  jobs={jobs_n} {sweep_parallel_s:7.4f} s   "
        f"({sweep_serial_s / sweep_parallel_s:.1f}x)",
    ]
    record("speed", "\n".join(lines))

    # The acceptance bar: batched execution is an order of magnitude
    # faster than the byte interpreter at paper-scale trip counts.
    assert speedup >= 10.0, f"numpy backend only {speedup:.1f}x faster"
