"""Benchmarks for the extensions beyond the paper (no paper analogue).

Measures the vectorizers the paper's Section 7 lists as future work,
with the same verification-first methodology as the paper experiments:

* **reductions** — sum/min/xor accumulations over misaligned streams;
* **iota** — counter-valued computations;
* **compiled SSE cross-validation throughput** — how fast the full
  export→gcc→execute→compare loop runs (skipped without a compiler).
"""

import pytest

from repro import run_and_verify
from repro.export import find_compiler
from repro.ir import LoopBuilder
from repro.simdize import SimdOptions, simdize

from conftest import TRIP, record


def _reduction_loop(trip: int):
    lb = LoopBuilder(trip=trip, name="dot")
    out = lb.array("out", "int32", 8)
    x = lb.array("x", "int32", trip + 24, align=4)
    y = lb.array("y", "int32", trip + 24, align=12)
    lb.reduce(out, 0, "add", x[1] * y[3])
    return lb.build()


def _iota_loop(trip: int):
    lb = LoopBuilder(trip=trip, name="ramp")
    a = lb.array("a", "int16", trip + 24, align=6)
    g = lb.scalar("gain")
    lb.assign(a[1], lb.index_value() * g + 100)
    return lb.build()


def test_reduction_speedup(benchmark):
    loop = _reduction_loop(TRIP)
    options = SimdOptions(reuse="sp", unroll=4)

    def measure():
        program = simdize(loop, options=options).program
        return run_and_verify(program, seed=5)

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    record("ext_reduction",
           f"dot-product reduction (int32, trip {TRIP}): "
           f"opd={report.vector_opd:.3f}, speedup={report.speedup:.2f}x "
           f"(peak 4)")
    assert report.speedup > 1.3


def test_iota_speedup(benchmark):
    loop = _iota_loop(TRIP)
    options = SimdOptions(reuse="sp", unroll=4)

    def measure():
        program = simdize(loop, options=options).program
        return run_and_verify(program, seed=5, scalars={"gain": 3})

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    record("ext_iota",
           f"counter-valued ramp (int16, trip {TRIP}): "
           f"opd={report.vector_opd:.3f}, speedup={report.speedup:.2f}x "
           f"(peak 8)")
    assert report.speedup > 2.0


@pytest.mark.skipif(find_compiler() is None, reason="no C compiler")
def test_compiled_cross_validation_roundtrip(benchmark):
    from repro.export import cross_validate
    from repro.ir import figure1_loop

    loop = figure1_loop(trip=100)
    options = SimdOptions(policy="dominant", reuse="sp", unroll=2)
    report = benchmark.pedantic(
        lambda: cross_validate(loop, options), rounds=1, iterations=1)
    record("ext_crossval",
           f"export→gcc→run→byte-compare roundtrip: {report.output}")
    assert report.passed
