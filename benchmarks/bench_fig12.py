"""Regenerate paper Figure 12: OPD per scheme, OffsetReassoc ON.

Paper reference: reassociation "enables lazy-shift and dominant-shift
to have on average no shift overhead over LB", dropping the top three
schemes to 3.823 / 3.963 / 3.963 opd from 4.022 / 4.13 / 4.164 in
Figure 11.
"""

from repro.bench import figure11, figure12

from conftest import BACKEND, JOBS, SUITE_COUNT, TRIP, record


def test_figure12(benchmark):
    fig = benchmark.pedantic(
        figure12,
        kwargs=dict(count=SUITE_COUNT, trip=TRIP, jobs=JOBS, backend=BACKEND),
        rounds=1, iterations=1,
    )
    record("figure12", fig.format())

    # lazy/dominant shift overhead collapses to ~zero over the LB
    assert fig.bar("LAZY-pc").shift_overhead < 0.08
    assert fig.bar("LAZY-sp").shift_overhead < 0.08
    assert fig.bar("DOM-sp").shift_overhead < 0.15
    # and the best schemes improve over the Figure 11 configuration
    fig11 = figure11(count=SUITE_COUNT, trip=TRIP, jobs=JOBS, backend=BACKEND)
    assert fig.bar("LAZY-pc").total < fig11.bar("LAZY-pc").total
    assert fig.bar("DOM-sp").total <= fig11.bar("DOM-sp").total + 1e-9
    # eager cannot benefit (it never delays shifts), zero is untouched
    assert abs(fig.bar("ZERO-sp").total - fig11.bar("ZERO-sp").total) < 0.05
