"""Micro-benchmarks of the compiler itself (not a paper figure).

These time the reproduction's own pipeline — frontend, shift
placement, code generation, passes, and VM throughput — so regressions
in the implementation show up in ``pytest benchmarks/``.
"""

import random

from repro.bench import SynthParams, synthesize
from repro.ir import figure1_loop
from repro.lang import compile_source
from repro.machine import RunBindings, run_vector
from repro.simdize import SimdOptions, fill_random, make_space, simdize

SRC = """
int a[128];
int b[128];
int c[128];
for (i = 0; i < 100; i++) {
    a[i + 3] = b[i + 1] + c[i + 2];
}
"""


def test_frontend_throughput(benchmark):
    loop = benchmark(compile_source, SRC)
    assert loop.upper == 100


def test_simdize_figure1_dominant_sp(benchmark):
    loop = figure1_loop()
    options = SimdOptions(policy="dominant", reuse="sp", unroll=4)
    result = benchmark(simdize, loop, 16, options)
    assert result.program.steady is not None


def test_simdize_large_loop(benchmark):
    params = SynthParams(loads=8, statements=4, trip=997, reuse=0.5)
    loop = synthesize(params, seed=0).loop
    options = SimdOptions(policy="dominant", reuse="pc", unroll=4,
                          offset_reassoc=True)
    result = benchmark(simdize, loop, 16, options)
    assert result.shift_count > 0


def test_vm_throughput(benchmark):
    loop = figure1_loop(trip=100)
    result = simdize(loop, options=SimdOptions(reuse="sp", unroll=4))
    rng = random.Random(0)
    space = make_space(loop, 16, rng)
    mem = space.make_memory()
    fill_random(space, mem, rng)

    def run():
        return run_vector(result.program, space, mem.clone(), RunBindings())

    out = benchmark(run)
    assert not out.used_fallback
