"""Ablation benchmarks for the design choices DESIGN.md calls out.

These quantify paper claims that have no figure of their own:

* peeling (prior art) rarely applies to misaligned suites, while the
  reorganization-based simdizer handles all of them (Section 1);
* dropping stream reuse costs about a factor of two (Section 6:
  "without exploiting the reuse, there can be a performance slowdown
  of more than a factor of 2");
* memory normalization is a small but real win on suites with
  cross-statement array reuse (Section 5.5);
* unrolling removes the software-pipelining copy operations
  (Section 4.5).
"""

from repro.bench import (
    memnorm_ablation,
    peeling_ablation,
    reuse_ablation,
    unroll_ablation,
)

from conftest import SUITE_COUNT, TRIP, record


def test_peeling_ablation(benchmark):
    result = benchmark.pedantic(
        peeling_ablation,
        kwargs=dict(count=max(SUITE_COUNT, 30), trip=TRIP),
        rounds=1, iterations=1,
    )
    record("ablation_peeling", result.format())
    # peeling applies to only a small fraction of misaligned loops
    assert result.peeling_applicable_count <= result.total * 0.3
    assert result.ours_opd_on_all > 0


def test_reuse_ablation(benchmark):
    result = benchmark.pedantic(
        reuse_ablation, kwargs=dict(count=SUITE_COUNT, trip=TRIP),
        rounds=1, iterations=1,
    )
    record("ablation_reuse", result.format())
    # "slowdown of more than a factor of 2" — allow >=1.7 for scaled runs
    assert result.ratio > 1.7


def test_memnorm_ablation(benchmark):
    result = benchmark.pedantic(
        memnorm_ablation, kwargs=dict(count=SUITE_COUNT, trip=TRIP),
        rounds=1, iterations=1,
    )
    record("ablation_memnorm", result.format())
    # normalization never hurts and helps on shared-array suites
    assert result.ratio >= 1.0


def test_unroll_ablation(benchmark):
    result = benchmark.pedantic(
        unroll_ablation, kwargs=dict(count=SUITE_COUNT, trip=TRIP),
        rounds=1, iterations=1,
    )
    record("ablation_unroll", result.format())
    # rolled code pays for the copies and per-iteration overhead
    assert result.ratio > 1.1
