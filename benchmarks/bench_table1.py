"""Regenerate paper Table 1: speedups with 4 int32 elements per vector.

Paper reference (best compile-time / runtime speedups, peak 4):

    S1*L2  LAZY-pc 2.72 (LB 3.17)   ZERO-pc 2.15 (LB 2.36)
    S1*L4  LAZY-pc 3.02 (LB 3.27)   ZERO-pc 2.35 (LB 2.51)
    S1*L6  LAZY-pc 3.14 (LB 3.35)   ZERO-pc 2.42 (LB 2.54)
    S2*L4  DOM-sp  3.42 (LB 3.64)   ZERO-sp 2.47 (LB 2.68)
    S4*L4  LAZY-sp 3.47 (LB 3.64)   ZERO-sp 2.43 (LB 2.69)
    S4*L8  DOM-sp  3.71 (LB 3.93)   ZERO-sp 2.17 (LB 2.78)

Expected reproduction shape: speedups grow with loop size toward ~3.7,
runtime columns trail compile-time ones, LB speedups track the paper's
closely (they are layout-determined, not machine-determined).
"""

from repro.bench import table1

from conftest import BACKEND, JOBS, SUITE_COUNT, TRIP, record


def test_table1(benchmark):
    result = benchmark.pedantic(
        table1, kwargs=dict(count=SUITE_COUNT, trip=TRIP, jobs=JOBS, backend=BACKEND),
        rounds=1, iterations=1,
    )
    record("table1", result.format())

    rows = {row.label: row for row in result.rows}
    # Shape assertions against the paper:
    # (1) bigger loops reach higher best speedups than the smallest;
    assert rows["S4*L8"].compile_best.speedup > rows["S1*L2"].compile_best.speedup
    # (2) every best speedup is a genuine speedup below peak;
    for row in result.rows:
        assert 1.0 < row.compile_best.speedup < 4.0
        assert 1.0 < row.runtime_best.speedup < 4.0
    # (3) compile-time alignment beats runtime alignment everywhere;
    for row in result.rows:
        assert row.compile_best.speedup > row.runtime_best.speedup
    # (4) the larger rows get within striking distance of peak (paper: 3.71/4)
    assert rows["S4*L8"].compile_best.speedup > 2.8
    # (5) LB speedups land near the paper's layout-determined values.
    assert 3.0 < rows["S1*L6"].compile_best.lb_speedup < 3.7
