"""Regenerate paper Table 2: speedups with 8 int16 elements per vector.

Paper reference (best compile-time / runtime speedups, peak 8):

    S1*L2  LAZY-pc 5.10 (LB 5.85)   ZERO-pc 4.22 (LB 4.63)
    S1*L4  LAZY-pc 5.49 (LB 6.12)   ZERO-pc 4.65 (LB 4.97)
    S1*L6  LAZY-pc 5.67 (LB 6.25)   ZERO-pc 4.83 (LB 5.09)
    S2*L4  DOM-sp  6.06 (LB 6.94)   ZERO-sp 4.81 (LB 5.45)
    S4*L4  DOM-sp  6.06 (LB 6.91)   ZERO-sp 4.64 (LB 5.43)
    S4*L8  DOM-sp  6.05 (LB 7.32)   ZERO-sp 3.88 (LB 5.67)

Expected reproduction shape: short-int speedups are well above the
int32 speedups of Table 1 (8 lanes instead of 4) while staying clearly
below the peak of 8.
"""

from repro.bench import table2

from conftest import BACKEND, JOBS, SUITE_COUNT, TRIP, record


def test_table2(benchmark):
    result = benchmark.pedantic(
        table2, kwargs=dict(count=SUITE_COUNT, trip=TRIP, jobs=JOBS, backend=BACKEND),
        rounds=1, iterations=1,
    )
    record("table2", result.format())

    rows = {row.label: row for row in result.rows}
    for row in result.rows:
        assert 1.0 < row.compile_best.speedup < 8.0
        assert row.compile_best.speedup > row.runtime_best.speedup
    # short ints must exceed int32 territory (paper: >5 on every row)
    assert rows["S4*L4"].compile_best.speedup > 4.0
    # LB speedups reflect the 8-lane peak (paper: 5.85-7.32)
    assert rows["S4*L8"].compile_best.lb_speedup > 5.0
