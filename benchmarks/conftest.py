"""Shared configuration for the benchmark suite.

Every paper table/figure has a regeneration benchmark here.  Two
configurations exist:

* the default, scaled-down configuration (fewer loops per suite and
  shorter trip counts) keeps a full ``pytest benchmarks/`` run in the
  minutes range;
* ``REPRO_FULL=1`` switches to the paper-scale configuration (50 loops
  per suite, trip counts around 1000) used for the results recorded in
  ``EXPERIMENTS.md``.

Each benchmark prints the regenerated rows/bars to stdout (run pytest
with ``-s`` to see them) and appends them to
``benchmarks/results/*.txt`` so the numbers survive the run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

FULL = os.environ.get("REPRO_FULL", "") == "1"

#: loops per suite and trip count for the two configurations.
SUITE_COUNT = 50 if FULL else 6
TRIP = 997 if FULL else 257
COVERAGE_COUNT = 1000 if FULL else 120

#: Sweep execution knobs: worker processes and execution backend.
#: OPD numbers are invariant to both (see DESIGN.md §5); these only
#: change how fast the regeneration runs.
JOBS = int(os.environ.get("REPRO_JOBS", "1"))
BACKEND = os.environ.get("REPRO_BACKEND", "auto")

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Print regenerated results and persist them under results/."""
    print()
    print(text)
    from repro.reporting import atomic_write_text

    RESULTS_DIR.mkdir(exist_ok=True)
    config = "full" if FULL else "scaled"
    path = RESULTS_DIR / f"{name}.{config}.txt"
    atomic_write_text(path, text + "\n")


@pytest.fixture
def results_recorder():
    return record


@pytest.fixture(autouse=True)
def _isolated_disk_cache(tmp_path, monkeypatch):
    """Point the artifact disk cache at a per-test tmpdir.

    Keeps test runs from reading or polluting ~/.cache/repro, and makes
    cache-behavior tests deterministic (every test starts cold).
    """
    from repro.cache import reset_cache_dir

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
    reset_cache_dir()
    yield
    reset_cache_dir()
