"""Regenerate paper Figure 11: OPD per scheme, OffsetReassoc OFF.

Paper reference points (s=1, l=6 int loads, bias 30 %, SEQ = 12 opd):

* best scheme ~4.022 opd, against a ~3.587 LB;
* schemes without reuse (no PC/SP) range 5.372 - 10.182;
* runtime-alignment ZERO ~4.963 vs its 4.750 LB;
* the VAST-equivalent (ZERO-sp) trails the best schemes by more than
  one operation per datum.
"""

from repro.bench import figure11

from conftest import BACKEND, JOBS, SUITE_COUNT, TRIP, record


def test_figure11(benchmark):
    fig = benchmark.pedantic(
        figure11,
        kwargs=dict(count=SUITE_COUNT, trip=TRIP, jobs=JOBS, backend=BACKEND),
        rounds=1, iterations=1,
    )
    record("figure11", fig.format())

    assert fig.seq_opd == 12.0
    best = fig.best()
    # best schemes sit in the paper's ~4 opd territory
    assert best.total < 5.2
    # no-reuse schemes are much worse; worst lands near the paper's 10.182
    no_reuse = [fig.bar(l) for l in ("ZERO", "EAGER", "LAZY", "DOM")]
    assert min(b.total for b in no_reuse) > best.total
    assert max(b.total for b in no_reuse) > 8.0
    # zero-shift never shows shift overhead above its LB (deterministic)
    assert fig.bar("ZERO-sp").shift_overhead < 0.25
    # runtime zero-shift LB reproduces the paper's 4.750
    rt = fig.bar("ZERO-sp(runtime)")
    assert abs(rt.lb - 4.75) < 0.15
    # the VAST-equivalent trails the best scheme (paper: >1 opd worse)
    assert fig.bar("ZERO-sp").total > best.total + 0.5
