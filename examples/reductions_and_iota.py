#!/usr/bin/env python3
"""Extensions beyond the paper: reductions and the counter as a value.

The paper's Section 7 lists "accesses to scalar variables including
induction variables occurring in non-address computation" as future
work.  This reproduction implements both directions:

* **reductions** — ``out[k] op= expr(i)`` vectorizes into per-lane
  accumulators (streams zero-shifted so each block covers exactly B
  iterations), a masked tail block, and a logarithmic horizontal fold;
* **iota** — the loop counter used as a lane value becomes a
  register stream like any load stream, shifted by the same
  machinery when alignment demands it.

The script runs a dot product, a windowed maximum, a checksum, and a
counter-valued initialization — each verified byte-for-byte on the
virtual SIMD machine — and shows the stream diagrams behind one of
them.
"""

from repro import SimdOptions, compile_source, run_and_verify, simdize
from repro.viz import loop_alignment_table

KERNELS = (
    ("dot-product", """
        int acc[4];
        int x[1024];
        int y[1024];
        for (i = 0; i < 1000; i++) { acc[0] += x[i + 1] * y[i + 3]; }
    """, {}),
    ("window-max (via builder)", None, {}),
    ("xor-checksum", """
        unsigned int sum[4];
        unsigned int data[600] align ?;
        int n;
        for (i = 0; i < n; i++) { sum[2] ^= data[i + 2]; }
    """, {"trip": 512}),
    ("iota-ramp", """
        short wave[2048] align 6;
        short gain;
        for (i = 0; i < 2000; i++) { wave[i + 1] = i * gain + 100; }
    """, {"scalars": {"gain": 3}}),
)


def window_max_loop():
    from repro.ir import LoopBuilder

    lb = LoopBuilder(trip=900, name="window_max")
    out = lb.array("out", "int16", 8)
    s = lb.array("s", "int16", 1024, align=2)
    lb.reduce(out, 3, "max", s[1].max(s[5]))
    return lb.build()


def main() -> None:
    options = SimdOptions(reuse="sp", unroll=4)
    print(f"{'kernel':28s} {'kind':10s} {'opd':>7s} {'seq':>6s} {'speedup':>8s}")
    for name, source, binds in KERNELS:
        if source is None:
            loop = window_max_loop()
        else:
            loop = compile_source(source, name=name.split()[0])
        result = simdize(loop, options=options)
        report = run_and_verify(result.program, seed=11,
                                trip=binds.get("trip"),
                                scalars=binds.get("scalars"))
        kind = "reduction" if loop.has_reductions else "map"
        print(f"{name:28s} {kind:10s} {report.vector_opd:7.3f} "
              f"{report.scalar_opd:6.2f} {report.speedup:7.2f}x")

    print("\nAll kernels verified against scalar semantics.\n")
    print("Alignment picture of the dot product:")
    loop = compile_source(KERNELS[0][1], name="dot")
    print(loop_alignment_table(loop))


if __name__ == "__main__":
    main()
