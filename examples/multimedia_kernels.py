#!/usr/bin/env python3
"""Multimedia kernels: the workloads the paper's introduction motivates.

Multimedia extensions (AltiVec, SSE, VIS, …) were built for exactly
these loops — filters, blends, and saturating mixes over byte/short
pixel data — and they are full of misaligned accesses: a FIR filter
reads ``x[i], x[i+1], …``, an alpha blend walks subwindows that start
anywhere.  This example simdizes three such kernels:

* a 4-tap FIR-style filter over int16 samples (8 lanes per vector);
* an alpha blend of two uint8 images with a constant weight
  approximated in fixed point (16 lanes per vector);
* a "saxpy-like" scaled add over int32 with a runtime scalar
  coefficient and deliberately misaligned windows.

Every kernel is executed on the virtual SIMD machine and verified
against scalar semantics before its metrics are reported.
"""

from repro import SimdOptions, compile_source, run_and_verify, simdize

FIR = """
// y[i] = x[i]*k0 + x[i+1]*k1 + x[i+2]*k2 + x[i+3]*k3  (int16, 8 lanes)
short x[4096];
short y[4096] align 6;
short k0; short k1; short k2; short k3;
for (i = 0; i < 4000; i++) {
    y[i + 1] = x[i] * k0 + x[i + 1] * k1 + x[i + 2] * k2 + x[i + 3] * k3;
}
"""

ALPHA_BLEND = """
// saturating additive blend over misaligned subwindows
// (uint8, 16 lanes): the classic sprite-compositing kernel.
unsigned char imga[8192] align 3;
unsigned char imgb[8192] align 7;
unsigned char blend[8192] align 1;
for (i = 0; i < 8000; i++) {
    blend[i + 1] = sadd(imga[i + 3], ssub(imgb[i + 7], 16));
}
"""

SAXPY_MISALIGNED = """
// z[i+3] = alpha*x[i+1] + y[i+2]  (int32, 4 lanes; all refs misaligned)
int x[2048];
int y[2048];
int z[2048];
int alpha;
for (i = 0; i < 2000; i++) {
    z[i + 3] = alpha * x[i + 1] + y[i + 2];
}
"""

KERNELS = (
    ("fir4 (short, 8 lanes)", FIR, {"k0": 1, "k1": 3, "k2": 3, "k3": 1}),
    ("saturating-blend (uint8, 16)", ALPHA_BLEND, {}),
    ("saxpy-misaligned (int, 4 lanes)", SAXPY_MISALIGNED, {"alpha": 7}),
)


def main() -> None:
    options = SimdOptions(policy="auto", reuse="sp", unroll=4)
    print(f"{'kernel':32s} {'policy':9s} {'shifts':>6s} {'opd':>7s} "
          f"{'seq':>5s} {'speedup':>8s} {'peak':>5s}")
    for name, source, scalars in KERNELS:
        loop = compile_source(source, name=name.split()[0])
        result = simdize(loop, V=16, options=options)
        report = run_and_verify(result.program, seed=7, scalars=scalars)
        peak = 16 // loop.dtype.size
        print(
            f"{name:32s} {result.policy:9s} {result.shift_count:6d} "
            f"{report.vector_opd:7.3f} {report.scalar_opd:5.1f} "
            f"{report.speedup:7.2f}x {peak:4d}x"
        )
    print("\nAll kernels executed on the virtual SIMD machine and verified "
          "byte-for-byte against scalar semantics.")


if __name__ == "__main__":
    main()
