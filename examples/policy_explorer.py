#!/usr/bin/env python3
"""Policy explorer: how shift placement and reuse interact.

Sweeps the four stream-shift placement policies against the reuse
optimizations (none / predictive commoning / software pipelining) and
common-offset reassociation on a batch of synthesized loops — a
miniature of the paper's Figure 11/12 experiment that runs in seconds
and prints the three-component OPD breakdown for every scheme.

Try editing PARAMS: more loads per statement raises the misalignment
pressure; bias=1.0 makes every reference share one alignment (where
peeling-style prior art would finally apply).
"""

from repro.bench import SynthParams, measure_suite, synthesize_suite
from repro.simdize import SimdOptions

PARAMS = SynthParams(loads=6, statements=1, trip=397, bias=0.3, reuse=0.3)
COUNT = 10
UNROLL = 4


def main() -> None:
    suite = synthesize_suite(PARAMS, count=COUNT, base_seed=0)
    from repro.bench.lowerbound import seq_opd

    seq = sum(seq_opd(s.loop) for s in suite) / len(suite)
    print(f"{COUNT} synthesized loops, {PARAMS.label}, bias={PARAMS.bias}, "
          f"trip={PARAMS.trip};  SEQ opd = {seq:.1f}\n")
    header = (f"{'scheme':22s} {'opd':>7s} = {'LB':>6s} + {'shift':>6s} "
              f"+ {'other':>6s}   {'speedup':>8s}")
    for reassoc in (False, True):
        print(f"--- OffsetReassoc {'ON' if reassoc else 'OFF'}")
        print(header)
        for policy in ("zero", "eager", "lazy", "dominant"):
            for reuse in ("none", "pc", "sp"):
                options = SimdOptions(policy=policy, reuse=reuse,
                                      offset_reassoc=reassoc, unroll=UNROLL)
                res = measure_suite(suite, options)
                label = f"{policy.upper()}" + ("" if reuse == "none" else f"-{reuse}")
                print(f"{label:22s} {res.opd:7.3f} = {res.lb_opd:6.3f} + "
                      f"{res.shift_overhead:6.3f} + {res.other_overhead:6.3f}   "
                      f"{res.speedup:7.2f}x")
        print()


if __name__ == "__main__":
    main()
