#!/usr/bin/env python3
"""Export simdized loops to real intrinsics C code — and prove it right.

The paper's compiler emitted VMX machine code; this reproduction's
exporter emits C with SSE (x86) or AltiVec (PowerPC) intrinsics from
the same vector programs.  On a machine with a C compiler this script
goes one step further: it compiles the generated SSE code and runs it
on an arena whose array placement matches the virtual machine's, then
byte-compares the result against the scalar reference — real 16-byte
SIMD hardware executing the paper's algorithms.
"""

from repro import SimdOptions, compile_source, simdize
from repro.export import cross_validate, export_c, find_compiler

SOURCE = """
int a[256];
int b[256];
int c[256];
for (i = 0; i < 200; i++) {
    a[i + 3] = b[i + 1] + c[i + 2];
}
"""


def main() -> None:
    loop = compile_source(SOURCE, name="fig1")
    options = SimdOptions(policy="dominant", reuse="sp", unroll=2)
    program = simdize(loop, options=options).program

    sse = export_c(program, backend="sse")
    altivec = export_c(program, backend="altivec")

    print("=== SSE emission (excerpt) ===")
    for line in sse.splitlines():
        if "_mm_" in line and "for" not in line:
            print(line)
    print()
    print("=== AltiVec emission (excerpt) ===")
    for line in altivec.splitlines():
        if "vec_" in line and "static" not in line:
            print(line)
    print()

    if find_compiler() is None:
        print("no C compiler found — skipping compiled cross-validation")
        return

    for policy in ("zero", "eager", "lazy", "dominant"):
        report = cross_validate(loop, SimdOptions(policy=policy, reuse="sp",
                                                  unroll=2))
        print(f"compiled SSE, {policy:9s} policy: {report.output}")

    # Runtime alignment: the same binary handles any base residues.
    runtime = compile_source("""
        short x[512] align ?;
        short y[512] align ?;
        int n;
        for (i = 0; i < n; i++) { y[i] = x[i + 3] * 2 + 1; }
    """, name="rt_kernel")
    report = cross_validate(runtime, SimdOptions(policy="zero", reuse="sp"),
                            trip=400, seed=3)
    print(f"compiled SSE, runtime alignment + bound: {report.output}")


if __name__ == "__main__":
    main()
