#!/usr/bin/env python3
"""Quickstart: simdize the paper's running example end to end.

The loop from Figure 1 of the paper,

    for (i = 0; i < 100; i++)
        a[i+3] = b[i+1] + c[i+2];

has *three mutually misaligned* references (byte offsets 12, 4, and 8
with 16-byte-aligned array bases), so classic loop peeling cannot
vectorize it — at most one reference can be made aligned.  This script
walks the full pipeline on it:

1. compile mini-C source to loop IR,
2. place stream shifts with each policy and compare shift counts,
3. print the generated AltiVec-style SIMD code,
4. execute on the virtual SIMD machine, verify against scalar
   semantics, and report the dynamic-operation speedup.
"""

from repro import SimdOptions, compile_source, format_program, run_and_verify, simdize

SOURCE = """
// Figure 1 of the paper (int32, 16-byte aligned bases)
int a[128];
int b[128];
int c[128];
for (i = 0; i < 100; i++) {
    a[i + 3] = b[i + 1] + c[i + 2];
}
"""


def main() -> None:
    loop = compile_source(SOURCE, name="figure1")
    print("Input loop:")
    print(loop)
    print()

    print("Stream-shift counts per placement policy (paper Section 3.4):")
    for policy in ("zero", "eager", "lazy", "dominant"):
        result = simdize(loop, V=16, options=SimdOptions(policy=policy))
        print(f"  {policy:9s} -> {result.shift_count} vshiftstream ops")
    print()

    options = SimdOptions(policy="lazy", reuse="sp", unroll=2)
    result = simdize(loop, V=16, options=options)
    print("Generated code (lazy-shift, software-pipelined, unrolled x2):")
    print(format_program(result.program, altivec=True))
    print()

    report = run_and_verify(result.program, seed=42)
    print("Executed on the virtual SIMD machine and verified byte-for-byte")
    print(f"  scalar ops: {report.scalar_total}   simdized ops: {report.vector_total}")
    print(f"  operations/datum: {report.vector_opd:.3f}  (ideal scalar: {report.scalar_opd:.1f})")
    print(f"  speedup: {report.speedup:.2f}x  (peak would be 4x for int32)")


if __name__ == "__main__":
    main()
