#!/usr/bin/env python3
"""Runtime alignments and unknown loop bounds (paper Section 4.4).

A library routine receives pointers whose alignment is only known when
it is called, and a trip count that is a parameter:

    void add_windows(int *a, int *b, int *c, int n)
        for (i = 0; i < n; i++) a[i] = b[i] + c[i];

The compiler cannot prove anything about ``b``/``c``/``a`` alignment,
so only the zero-shift policy is usable (its shift *directions* are
fixed at compile time: loads shift left to offset 0, stores shift
right from 0).  The generated code computes the actual offsets at
runtime by masking the base addresses with ``V-1``, and guards the
whole vector path with ``ub > 3B``, falling back to the scalar loop
for short trips.

This script simdizes the routine once and then runs that single
program against many different runtime situations: every combination
of base alignments, and trip counts from degenerate (guarded) to
large.
"""

import random

from repro import (
    RunBindings,
    SimdOptions,
    compile_source,
    fill_random,
    format_program,
    simdize,
    verify_equivalence,
)
from repro.errors import PolicyError
from repro.machine import ArraySpace

SOURCE = """
int a[600] align ?;
int b[600] align ?;
int c[600] align ?;
int n;
for (i = 0; i < n; i++) {
    a[i] = b[i] + c[i];
}
"""


def main() -> None:
    loop = compile_source(SOURCE, name="add_windows")

    # Eager/lazy/dominant need compile-time alignments and must refuse:
    try:
        simdize(loop, options=SimdOptions(policy="lazy"))
    except PolicyError as exc:
        print(f"lazy-shift correctly refused: {exc}\n")

    result = simdize(loop, options=SimdOptions(policy="zero", reuse="sp", unroll=2))
    print("Generated code (zero-shift, runtime offsets via `base & (V-1)`):")
    print(format_program(result.program, altivec=True))
    print()

    rng = random.Random(0)
    runs = 0
    fallbacks = 0
    for trial in range(60):
        residues = {name: rng.randrange(0, 16, 4) for name in ("a", "b", "c")}
        trip = rng.choice([1, 3, 7, 12, 13, 40, 97, 256, 500])
        space = ArraySpace(16)
        space.place_all(loop.arrays(), residues)
        mem = space.make_memory()
        fill_random(space, mem, rng)
        report = verify_equivalence(result.program, space, mem, RunBindings(trip=trip))
        runs += 1
        fallbacks += report.used_fallback
    print(f"Verified {runs} runtime situations (random base alignments x trip "
          f"counts); {fallbacks} took the guarded scalar fallback (trip <= 3B).")

    # One headline measurement at a large trip count.
    space = ArraySpace(16)
    space.place_all(loop.arrays(), {"a": 4, "b": 8, "c": 12})
    mem = space.make_memory()
    fill_random(space, mem, random.Random(1))
    report = verify_equivalence(result.program, space, mem, RunBindings(trip=500))
    print(f"\nWith bases at +4/+8/+12 and n=500: opd={report.vector_opd:.3f}, "
          f"speedup={report.speedup:.2f}x (alignments discovered at runtime).")


if __name__ == "__main__":
    main()
