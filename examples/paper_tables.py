#!/usr/bin/env python3
"""Regenerate the paper's Tables 1 & 2 and Figures 11 & 12.

By default this runs a scaled-down configuration (12 loops per suite,
trip 509) that finishes in a few minutes; set ``REPRO_FULL=1`` in the
environment to run the paper-scale configuration (50 loops per suite,
trip counts around 1000).

The regenerated numbers to compare against the paper:

* Table 1 best compile-time speedups climb from ~2.7 (S1*L2) to ~3.7
  (S4*L8) against a peak of 4; runtime columns sit around 2.2-2.8.
* Table 2 (8 short ints) reaches ~6 against a peak of 8.
* Figure 11: SEQ=12; best scheme ~4.0; schemes without reuse 5.4-10.2;
  runtime ZERO ~5.0 vs LB 4.750.
* Figure 12 (OffsetReassoc): top schemes drop to ~3.8-4.0 with no
  shift overhead above the lower bound for lazy/dominant.
"""

import os
import time

from repro.bench import figure11, figure12, table1, table2

FULL = os.environ.get("REPRO_FULL", "") == "1"
COUNT = 50 if FULL else 12
TRIP = 997 if FULL else 509


def main() -> None:
    t0 = time.time()
    print(f"configuration: {COUNT} loops per suite, trip={TRIP} "
          f"({'paper-scale' if FULL else 'scaled down; REPRO_FULL=1 for full'})\n")

    for build in (table1, table2):
        result = build(count=COUNT, trip=TRIP)
        print(result.format())
        print()

    for build in (figure11, figure12):
        result = build(count=COUNT, trip=TRIP)
        print(result.format())
        print()

    print(f"total time: {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
